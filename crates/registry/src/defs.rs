//! The definition types a registry file deserializes into, with their
//! range/consistency validation and builders into runtime values.
//!
//! Design notes for the vendored mini-serde: optional JSON fields must be
//! `Option<T>` (a missing key deserializes as `None`, and `None` serializes
//! back as an explicit `null`), and there are no field attributes — so every
//! default lives in the builder (`pe_cols: None` → 64 columns), not in the
//! serde layer.

use magma_cost::{DataflowStyle, SubAccelConfig};
use magma_model::{zoo, TaskType, Tenant, TenantMix};
use magma_platform::AcceleratorPlatform;
use magma_serve::Scenario;
use serde::{Deserialize, Serialize, Value};

/// Bytes per KB — scratchpad sizes are specified in KB in registry files,
/// matching Table III's units.
pub const KB: usize = 1024;

/// Default PE-array column count when a core omits `pe_cols` (Table III
/// fixes 64 columns for every setting).
pub const DEFAULT_PE_COLS: usize = 64;

/// Parses a registry task string into a [`TaskType`].
///
/// Accepted (case-insensitive): `vision`, `language`, `recommendation`,
/// `mix`.
pub fn parse_task(s: &str) -> Option<TaskType> {
    match s.trim().to_ascii_lowercase().as_str() {
        "vision" => Some(TaskType::Vision),
        "language" => Some(TaskType::Language),
        "recommendation" => Some(TaskType::Recommendation),
        "mix" => Some(TaskType::Mix),
        _ => None,
    }
}

/// Parses a registry dataflow string into a [`DataflowStyle`].
///
/// Accepted (case-insensitive): `hb` / `highbandwidth` (NVDLA-style
/// weight-stationary) and `lb` / `lowbandwidth` (ShiDianNao-style
/// output-stationary).
pub fn parse_dataflow(s: &str) -> Option<DataflowStyle> {
    match s.trim().to_ascii_lowercase().as_str() {
        "hb" | "highbandwidth" => Some(DataflowStyle::HighBandwidth),
        "lb" | "lowbandwidth" => Some(DataflowStyle::LowBandwidth),
        _ => None,
    }
}

/// Parses a registry arrival-process string into a [`Scenario`].
///
/// Accepted (case-insensitive): `poisson`, `bursty`, `drift`.
pub fn parse_process(s: &str) -> Option<Scenario> {
    match s.trim().to_ascii_lowercase().as_str() {
        "poisson" => Some(Scenario::Poisson),
        "bursty" => Some(Scenario::Bursty),
        "drift" => Some(Scenario::Drift),
        _ => None,
    }
}

/// Serializes a definition into its canonical [`Value`] tree (used to embed
/// resolved definitions in scenario descriptors).
pub(crate) fn def_value<T: Serialize>(def: &T) -> Value {
    def.to_value()
}

/// One accelerator core class inside a [`PlatformDef`]: `count` identical
/// sub-accelerator cores sharing PE-array shape, dataflow and buffering.
///
/// With `count > 1` the expanded cores are named `{name}0..{name}{count-1}`
/// (matching the hardcoded Table III naming, e.g. `S1-hb` × 4 →
/// `S1-hb0..S1-hb3`); with `count` 1 (or omitted) the name is used verbatim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreDef {
    /// Core-class name (expansion prefix when `count > 1`).
    pub name: String,
    /// Number of identical cores of this class; `null` means 1.
    pub count: Option<usize>,
    /// PE-array rows.
    pub pe_rows: usize,
    /// PE-array columns; `null` means [`DEFAULT_PE_COLS`].
    pub pe_cols: Option<usize>,
    /// Dataflow style: `hb` or `lb` (see [`parse_dataflow`]).
    pub dataflow: String,
    /// Global scratchpad capacity in KB.
    pub sg_kb: usize,
    /// Per-PE local scratchpad in bytes; `null` means the cost model's
    /// default.
    pub sl_bytes: Option<usize>,
    /// Clock frequency in MHz; `null` means the cost model's default.
    pub frequency_mhz: Option<f64>,
    /// Run-time configurable PE-array shape (Section VI-F); `null` means
    /// fixed-shape.
    pub flexible: Option<bool>,
}

impl CoreDef {
    /// Range-checks this core class. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("core name is empty".into());
        }
        if self.count == Some(0) {
            return Err(format!("core {:?} has count 0 (omit the core instead)", self.name));
        }
        if self.pe_rows == 0 {
            return Err(format!("core {:?} has zero PE rows", self.name));
        }
        if self.pe_cols == Some(0) {
            return Err(format!("core {:?} has zero PE columns", self.name));
        }
        if parse_dataflow(&self.dataflow).is_none() {
            return Err(format!(
                "core {:?} has unknown dataflow {:?} (expected hb or lb)",
                self.name, self.dataflow
            ));
        }
        if self.sg_kb == 0 {
            return Err(format!("core {:?} has a zero-KB global scratchpad", self.name));
        }
        if self.sl_bytes == Some(0) {
            return Err(format!("core {:?} has a zero-byte local scratchpad", self.name));
        }
        if let Some(f) = self.frequency_mhz {
            if !f.is_finite() || f <= 0.0 {
                return Err(format!("core {:?} has non-positive frequency {f} MHz", self.name));
            }
        }
        Ok(())
    }

    /// The expanded core names this class contributes.
    pub fn expanded_names(&self) -> Vec<String> {
        let count = self.count.unwrap_or(1);
        if count == 1 {
            vec![self.name.clone()]
        } else {
            (0..count).map(|i| format!("{}{i}", self.name)).collect()
        }
    }

    /// Expands this class into its [`SubAccelConfig`] cores. Must only be
    /// called on a validated def (panics on invalid dims, like the hardcoded
    /// builders).
    pub fn build_into(&self, cores: &mut Vec<SubAccelConfig>) {
        let dataflow = parse_dataflow(&self.dataflow)
            .unwrap_or_else(|| panic!("core {:?}: unvalidated dataflow", self.name));
        for name in self.expanded_names() {
            let mut core = SubAccelConfig::new(
                name,
                self.pe_rows,
                self.pe_cols.unwrap_or(DEFAULT_PE_COLS),
                dataflow,
                self.sg_kb * KB,
            );
            if let Some(sl) = self.sl_bytes {
                core = core.with_sl_bytes(sl);
            }
            if let Some(f) = self.frequency_mhz {
                core = core.with_frequency_mhz(f);
            }
            if let Some(flexible) = self.flexible {
                core = core.with_flexible_shape(flexible);
            }
            cores.push(core);
        }
    }
}

/// A multi-core accelerator platform definition (`"kind": "platform"`) —
/// the registry form of a Table III row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformDef {
    /// Must equal [`crate::REGISTRY_SCHEMA`].
    pub schema: String,
    /// Must be `"platform"`.
    pub kind: String,
    /// Platform name — what scenarios reference and reports label runs with.
    pub name: String,
    /// Free-form description; `null` allowed.
    pub description: Option<String>,
    /// Shared system (DRAM) bandwidth in GB/s.
    pub system_bw_gbps: f64,
    /// The core classes; expanded in order.
    pub cores: Vec<CoreDef>,
}

impl PlatformDef {
    /// Range- and consistency-checks the platform definition.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("platform name is empty".into());
        }
        if !self.system_bw_gbps.is_finite() || self.system_bw_gbps <= 0.0 {
            return Err(format!(
                "system_bw_gbps must be finite and positive, got {}",
                self.system_bw_gbps
            ));
        }
        if self.cores.is_empty() {
            return Err("a platform needs at least one core".into());
        }
        let mut seen = std::collections::BTreeSet::new();
        for core in &self.cores {
            core.validate()?;
            for name in core.expanded_names() {
                if !seen.insert(name.clone()) {
                    return Err(format!(
                        "expanded core name {name:?} collides (check core class names/counts)"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total expanded core count.
    pub fn core_count(&self) -> usize {
        self.cores.iter().map(|c| c.count.unwrap_or(1)).sum()
    }

    /// Builds the runtime [`AcceleratorPlatform`]. Call only after
    /// [`PlatformDef::validate`].
    pub fn build(&self) -> AcceleratorPlatform {
        let mut cores = Vec::with_capacity(self.core_count());
        for core in &self.cores {
            core.build_into(&mut cores);
        }
        AcceleratorPlatform::new(self.name.clone(), cores, self.system_bw_gbps)
    }
}

/// One tenant in an explicit [`MixDef`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantDef {
    /// Tenant name (appears in per-tenant metrics).
    pub name: String,
    /// Task category: `vision` / `language` / `recommendation` / `mix`.
    pub task: String,
    /// Zoo model names this tenant owns (case-insensitive lookup).
    pub models: Vec<String>,
    /// Relative traffic weight.
    pub weight: f64,
    /// Per-tenant SLA contract multiplier; `null` means the uniform bound.
    pub sla_multiplier: Option<f64>,
}

impl TenantDef {
    /// Range-checks the tenant (model-name existence is the registry's
    /// cross-reference pass, not this check).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("tenant name is empty".into());
        }
        if parse_task(&self.task).is_none() {
            return Err(format!(
                "tenant {:?} has unknown task {:?} (expected vision, language, \
                 recommendation or mix)",
                self.name, self.task
            ));
        }
        if self.models.is_empty() {
            return Err(format!("tenant {:?} owns no models", self.name));
        }
        if !self.weight.is_finite() || self.weight <= 0.0 {
            return Err(format!("tenant {:?} has non-positive weight {}", self.name, self.weight));
        }
        if let Some(x) = self.sla_multiplier {
            if !x.is_finite() || x <= 0.0 {
                return Err(format!("tenant {:?} has non-positive SLA multiplier {x}", self.name));
            }
        }
        Ok(())
    }

    /// Builds the runtime [`Tenant`], resolving model names against the zoo.
    pub fn build(&self) -> Result<Tenant, String> {
        let task = parse_task(&self.task)
            .ok_or_else(|| format!("tenant {:?}: unvalidated task {:?}", self.name, self.task))?;
        let models = self
            .models
            .iter()
            .map(|m| {
                zoo::by_name(m)
                    .ok_or_else(|| format!("tenant {:?}: unknown model {m:?}", self.name))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let tenant = Tenant::new(self.name.clone(), task, models, self.weight);
        Ok(match self.sla_multiplier {
            Some(x) => tenant.with_sla_multiplier(x),
            None => tenant,
        })
    }
}

/// Parameters of a synthetic fleet-scale mix
/// ([`TenantMix::synthetic`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticMixDef {
    /// Number of synthetic tenants.
    pub tenants: usize,
    /// Seed deterministically assigning models/weights/SLA contracts.
    pub seed: u64,
}

/// A tenant-mix definition (`"kind": "mix"`): either an explicit tenant
/// list or a synthetic fleet-scale mix — exactly one of the two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixDef {
    /// Must equal [`crate::REGISTRY_SCHEMA`].
    pub schema: String,
    /// Must be `"mix"`.
    pub kind: String,
    /// Mix name — what scenarios reference.
    pub name: String,
    /// Free-form description; `null` allowed.
    pub description: Option<String>,
    /// Explicit tenants (exclusive with `synthetic`).
    pub tenants: Option<Vec<TenantDef>>,
    /// Synthetic mix parameters (exclusive with `tenants`).
    pub synthetic: Option<SyntheticMixDef>,
    /// SLA contract multiplier applied to every explicit tenant that does
    /// not pin its own `sla_multiplier`; `null` means the uniform bound.
    /// Only valid on explicit mixes (synthetic mixes derive contracts from
    /// their seed).
    pub default_sla_multiplier: Option<f64>,
}

impl MixDef {
    /// Range- and consistency-checks the mix definition.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("mix name is empty".into());
        }
        match (&self.tenants, &self.synthetic) {
            (Some(_), Some(_)) => {
                return Err("a mix is either explicit tenants or synthetic, not both".into())
            }
            (None, None) => {
                return Err("a mix needs either a tenants list or a synthetic block".into())
            }
            (Some(tenants), None) => {
                if tenants.is_empty() {
                    return Err("the tenants list is empty".into());
                }
                let mut seen = std::collections::BTreeSet::new();
                for t in tenants {
                    t.validate()?;
                    if !seen.insert(t.name.clone()) {
                        return Err(format!("duplicate tenant name {:?}", t.name));
                    }
                }
            }
            (None, Some(synth)) => {
                if synth.tenants == 0 {
                    return Err("a synthetic mix needs at least one tenant".into());
                }
                if self.default_sla_multiplier.is_some() {
                    return Err("default SLA multiplier requires an explicit tenants list \
                         (synthetic mixes derive contracts from their seed)"
                        .into());
                }
            }
        }
        if let Some(x) = self.default_sla_multiplier {
            if !x.is_finite() || x <= 0.0 {
                return Err(format!(
                    "mix {:?} has non-positive default SLA multiplier {x}",
                    self.name
                ));
            }
        }
        Ok(())
    }

    /// Every model name this mix references (for the registry's dangling-ref
    /// pass).
    pub fn model_refs(&self) -> Vec<&str> {
        self.tenants.iter().flatten().flat_map(|t| t.models.iter().map(String::as_str)).collect()
    }

    /// Builds the runtime [`TenantMix`]. Call only after
    /// [`MixDef::validate`] and the registry's model cross-reference pass.
    pub fn build(&self) -> Result<TenantMix, String> {
        if let Some(synth) = &self.synthetic {
            return Ok(TenantMix::synthetic(synth.tenants, synth.seed));
        }
        let tenants = self
            .tenants
            .as_ref()
            .ok_or_else(|| format!("mix {:?}: unvalidated empty mix", self.name))?
            .iter()
            .map(|t| {
                let built = t.build()?;
                Ok(match (t.sla_multiplier, self.default_sla_multiplier) {
                    (None, Some(x)) => built.with_sla_multiplier(x),
                    _ => built,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(TenantMix::new(tenants))
    }
}

/// The traffic block of a [`ScenarioDef`]: arrival process plus optional
/// scale overrides (`null` inherits the serving knobs, so the same scenario
/// file runs at smoke and full scale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficDef {
    /// Arrival process: `poisson` / `bursty` / `drift`
    /// (see [`parse_process`]).
    pub process: String,
    /// Trace length override; `null` inherits `MAGMA_SERVE_REQUESTS`.
    pub requests: Option<usize>,
    /// Offered-load override (fraction of ideal service rate); `null`
    /// inherits `MAGMA_SERVE_LOAD`.
    pub offered_load: Option<f64>,
    /// Seed override; `null` inherits `MAGMA_SERVE_SEED`.
    pub seed: Option<u64>,
}

impl TrafficDef {
    /// Range-checks the traffic block.
    pub fn validate(&self) -> Result<(), String> {
        if parse_process(&self.process).is_none() {
            return Err(format!(
                "unknown arrival process {:?} (expected poisson, bursty or drift)",
                self.process
            ));
        }
        if self.requests == Some(0) {
            return Err("requests override must be positive".into());
        }
        if let Some(load) = self.offered_load {
            if !load.is_finite() || load <= 0.0 {
                return Err(format!("offered_load must be finite and positive, got {load}"));
            }
        }
        Ok(())
    }

    /// The parsed arrival process. Call only after
    /// [`TrafficDef::validate`].
    pub fn process(&self) -> Result<Scenario, String> {
        parse_process(&self.process)
            .ok_or_else(|| format!("unvalidated arrival process {:?}", self.process))
    }
}

/// The optional serving block of a [`ScenarioDef`]: cache/dispatch knobs a
/// scenario pins so it carries its *full* serving configuration, not just
/// workload and traffic. Every field is optional — `null` inherits the
/// ambient `MAGMA_SERVE_*` knobs, so the same file still runs at smoke and
/// full scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingDef {
    /// Near-hit probe threshold override (mean per-job signature distance);
    /// `0` disables the probe. `null` inherits `MAGMA_SERVE_CACHE_EPSILON`.
    pub cache_epsilon: Option<f64>,
    /// Refine-budget override for cache hits; `null` inherits
    /// `MAGMA_SERVE_REFINE_BUDGET`.
    pub refine_budget: Option<usize>,
    /// Signature-key quantization step override; `null` inherits
    /// `MAGMA_SERVE_QUANT`.
    pub quant_step: Option<f64>,
    /// Uniform SLA bound multiplier override; `null` inherits
    /// `MAGMA_SERVE_SLA_X`.
    pub sla_x: Option<f64>,
}

impl ServingDef {
    /// Range-checks the serving block.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(eps) = self.cache_epsilon {
            if !eps.is_finite() || eps < 0.0 {
                return Err(format!("cache_epsilon must be finite and >= 0, got {eps}"));
            }
        }
        if self.refine_budget == Some(0) {
            return Err("refine_budget override must be positive".into());
        }
        if let Some(q) = self.quant_step {
            if !q.is_finite() || q <= 0.0 {
                return Err(format!("quant_step must be finite and positive, got {q}"));
            }
        }
        if let Some(x) = self.sla_x {
            if !x.is_finite() || x <= 0.0 {
                return Err(format!("sla_x must be finite and positive, got {x}"));
            }
        }
        Ok(())
    }
}

/// A runnable scenario definition (`"kind": "scenario"`): a platform
/// reference, a mix reference, a traffic block and an optional serving
/// block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioDef {
    /// Must equal [`crate::REGISTRY_SCHEMA`].
    pub schema: String,
    /// Must be `"scenario"`.
    pub kind: String,
    /// Scenario name — the report label and `Registry::resolve` key.
    pub name: String,
    /// Free-form description; `null` allowed.
    pub description: Option<String>,
    /// Name of a registered platform definition.
    pub platform: String,
    /// Name of a registered mix definition.
    pub mix: String,
    /// The traffic block.
    pub traffic: TrafficDef,
    /// Optional serving-configuration block; `null` inherits every knob.
    pub serving: Option<ServingDef>,
}

impl ScenarioDef {
    /// Range-checks the scenario definition (reference existence is the
    /// registry's cross-reference pass).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("scenario name is empty".into());
        }
        if self.platform.trim().is_empty() {
            return Err("platform reference is empty".into());
        }
        if self.mix.trim().is_empty() {
            return Err("mix reference is empty".into());
        }
        self.traffic.validate()?;
        if let Some(serving) = &self.serving {
            serving.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use magma_platform::{settings, Setting};

    #[test]
    fn parse_helpers_cover_registry_vocabulary() {
        assert_eq!(parse_task("Vision"), Some(TaskType::Vision));
        assert_eq!(parse_task("RECOMMENDATION"), Some(TaskType::Recommendation));
        assert_eq!(parse_task("speech"), None);
        assert_eq!(parse_dataflow("hb"), Some(DataflowStyle::HighBandwidth));
        assert_eq!(parse_dataflow("LowBandwidth"), Some(DataflowStyle::LowBandwidth));
        assert_eq!(parse_dataflow("systolic"), None);
        assert_eq!(parse_process("Poisson"), Some(Scenario::Poisson));
        assert_eq!(parse_process("drift"), Some(Scenario::Drift));
        assert_eq!(parse_process("uniform"), None);
    }

    #[test]
    fn core_expansion_matches_table_iii_naming() {
        let quad = CoreDef {
            name: "S1-hb".into(),
            count: Some(4),
            pe_rows: 32,
            pe_cols: None,
            dataflow: "hb".into(),
            sg_kb: 146,
            sl_bytes: None,
            frequency_mhz: None,
            flexible: None,
        };
        assert_eq!(quad.expanded_names(), ["S1-hb0", "S1-hb1", "S1-hb2", "S1-hb3"]);
        let single = CoreDef { name: "S2-lb0".into(), count: None, ..quad.clone() };
        assert_eq!(single.expanded_names(), ["S2-lb0"]);
    }

    #[test]
    fn builtin_platform_defs_build_bit_identical_settings() {
        for setting in Setting::ALL {
            let def = builtin::platform_def_for(setting);
            def.validate().unwrap_or_else(|e| panic!("{setting}: {e}"));
            assert_eq!(def.build(), settings::build(setting), "{setting} differs");
        }
    }

    #[test]
    fn builtin_mix_defs_build_bit_identical_mixes() {
        let defs = builtin::builtin_mix_defs();
        let standard = defs.iter().find(|d| d.name == "standard").expect("standard mix");
        standard.validate().expect("valid");
        assert_eq!(standard.build().expect("builds"), TenantMix::standard());

        let repeated =
            defs.iter().find(|d| d.name == "repeated_tenant").expect("repeated_tenant mix");
        assert_eq!(
            repeated.build().expect("builds"),
            TenantMix::single("recommendation", TaskType::Recommendation, vec![zoo::ncf()])
        );
    }

    #[test]
    fn rejects_out_of_range_platform_values() {
        let mut def = builtin::platform_def_for(Setting::S1);
        def.system_bw_gbps = 0.0;
        assert!(def.validate().unwrap_err().contains("system_bw_gbps"));

        let mut def = builtin::platform_def_for(Setting::S1);
        def.system_bw_gbps = -4.0;
        assert!(def.validate().is_err());

        let mut def = builtin::platform_def_for(Setting::S1);
        def.cores[0].pe_rows = 0;
        assert!(def.validate().unwrap_err().contains("PE rows"));

        let mut def = builtin::platform_def_for(Setting::S1);
        def.cores[0].dataflow = "warp".into();
        assert!(def.validate().unwrap_err().contains("unknown dataflow"));

        let mut def = builtin::platform_def_for(Setting::S1);
        def.cores.clear();
        assert!(def.validate().is_err());

        // Colliding expansion: two classes expanding to the same name.
        let mut def = builtin::platform_def_for(Setting::S2);
        def.cores[1].name = "S2-hb0".into();
        assert!(def.validate().unwrap_err().contains("collides"));
    }

    #[test]
    fn rejects_out_of_range_mix_values() {
        let mut def = builtin::builtin_mix_defs()[0].clone();
        def.tenants.as_mut().unwrap()[0].weight = 0.0;
        assert!(def.validate().unwrap_err().contains("weight"));

        let mut def = builtin::builtin_mix_defs()[0].clone();
        def.tenants.as_mut().unwrap()[0].task = "speech".into();
        assert!(def.validate().unwrap_err().contains("unknown task"));

        let mut def = builtin::builtin_mix_defs()[0].clone();
        def.tenants.as_mut().unwrap()[0].sla_multiplier = Some(-1.0);
        assert!(def.validate().unwrap_err().contains("SLA"));

        let mut def = builtin::builtin_mix_defs()[0].clone();
        def.synthetic = Some(SyntheticMixDef { tenants: 8, seed: 1 });
        assert!(def.validate().unwrap_err().contains("not both"));

        let mut def = builtin::builtin_mix_defs()[0].clone();
        def.tenants = None;
        assert!(def.validate().unwrap_err().contains("either"));

        let mut def = builtin::builtin_mix_defs()[0].clone();
        def.default_sla_multiplier = Some(0.0);
        assert!(def.validate().unwrap_err().contains("default SLA multiplier"));

        let mut def = builtin::builtin_mix_defs()[0].clone();
        def.default_sla_multiplier = Some(f64::NAN);
        assert!(def.validate().is_err());

        let mut def = builtin::builtin_mix_defs()[0].clone();
        def.tenants = None;
        def.synthetic = Some(SyntheticMixDef { tenants: 8, seed: 1 });
        def.default_sla_multiplier = Some(2.0);
        assert!(def.validate().unwrap_err().contains("explicit tenants"));
    }

    #[test]
    fn default_sla_multiplier_fills_unpinned_tenants_only() {
        let mut def = builtin::builtin_mix_defs()[0].clone();
        let tenants = def.tenants.as_mut().unwrap();
        tenants[0].sla_multiplier = Some(0.5);
        def.default_sla_multiplier = Some(2.0);
        def.validate().expect("valid");
        let mix = def.build().expect("builds");
        assert_eq!(mix.tenants()[0].sla_multiplier(), Some(0.5), "pinned tenant keeps its own");
        for t in &mix.tenants()[1..] {
            assert_eq!(t.sla_multiplier(), Some(2.0), "unpinned tenant inherits the default");
        }
    }

    #[test]
    fn rejects_out_of_range_serving_values() {
        let base = builtin::builtin_scenario_defs()[0].clone();

        let mut def = base.clone();
        def.serving = Some(ServingDef {
            cache_epsilon: Some(-1.0),
            refine_budget: None,
            quant_step: None,
            sla_x: None,
        });
        assert!(def.validate().unwrap_err().contains("cache_epsilon"));

        let mut def = base.clone();
        def.serving = Some(ServingDef {
            cache_epsilon: Some(f64::INFINITY),
            refine_budget: None,
            quant_step: None,
            sla_x: None,
        });
        assert!(def.validate().is_err());

        let mut def = base.clone();
        def.serving = Some(ServingDef {
            cache_epsilon: None,
            refine_budget: Some(0),
            quant_step: None,
            sla_x: None,
        });
        assert!(def.validate().unwrap_err().contains("refine_budget"));

        let mut def = base.clone();
        def.serving = Some(ServingDef {
            cache_epsilon: None,
            refine_budget: None,
            quant_step: Some(0.0),
            sla_x: None,
        });
        assert!(def.validate().unwrap_err().contains("quant_step"));

        let mut def = base.clone();
        def.serving = Some(ServingDef {
            cache_epsilon: None,
            refine_budget: None,
            quant_step: None,
            sla_x: Some(-3.0),
        });
        assert!(def.validate().unwrap_err().contains("sla_x"));

        // A fully-pinned in-range block passes.
        let mut def = base;
        def.serving = Some(ServingDef {
            cache_epsilon: Some(2.0),
            refine_budget: Some(12),
            quant_step: Some(0.5),
            sla_x: Some(4.0),
        });
        def.validate().expect("in-range serving block validates");
    }

    // Serialize → load round-trips over randomized definitions: whatever the
    // generator (or a user) can express must survive the committed-file form
    // bit-for-bit, including the built runtime values.
    mod round_trip {
        use super::super::*;
        use crate::REGISTRY_SCHEMA;
        use proptest::prelude::*;

        fn platform_of(
            bw: f64,
            hb_count: usize,
            lb_count: usize,
            pe_rows: usize,
            sg_kb: usize,
        ) -> PlatformDef {
            PlatformDef {
                schema: REGISTRY_SCHEMA.to_string(),
                kind: "platform".to_string(),
                name: "prop-platform".to_string(),
                description: None,
                system_bw_gbps: bw,
                cores: vec![
                    CoreDef {
                        name: "prop-hb".to_string(),
                        count: Some(hb_count),
                        pe_rows,
                        pe_cols: None,
                        dataflow: "hb".to_string(),
                        sg_kb,
                        sl_bytes: None,
                        frequency_mhz: None,
                        flexible: None,
                    },
                    CoreDef {
                        name: "prop-lb".to_string(),
                        count: Some(lb_count),
                        pe_rows,
                        pe_cols: Some(32),
                        dataflow: "lb".to_string(),
                        sg_kb,
                        sl_bytes: Some(2048),
                        frequency_mhz: Some(700.0),
                        flexible: Some(true),
                    },
                ],
            }
        }

        proptest! {
            #[test]
            fn platform_defs_round_trip_and_rebuild(
                bw in 1.0f64..512.0,
                hb_count in 1usize..9,
                lb_count in 1usize..5,
                pe_rows in 1usize..257,
                sg_kb in 1usize..1024,
            ) {
                let def = platform_of(bw, hb_count, lb_count, pe_rows, sg_kb);
                def.validate().map_err(proptest::TestCaseError::fail)?;
                let json = serde_json::to_string_pretty(&def).unwrap();
                let back: PlatformDef = serde_json::from_str(&json).unwrap();
                assert_eq!(back, def, "def round-trips");
                assert_eq!(back.build(), def.build(), "built platform round-trips");
            }

            #[test]
            fn synthetic_mix_defs_round_trip_and_rebuild(
                tenants in 1usize..96,
                seed in 0u64..4096,
            ) {
                let def = MixDef {
                    schema: REGISTRY_SCHEMA.to_string(),
                    kind: "mix".to_string(),
                    name: "prop-mix".to_string(),
                    description: None,
                    tenants: None,
                    synthetic: Some(SyntheticMixDef { tenants, seed }),
                    default_sla_multiplier: None,
                };
                def.validate().map_err(proptest::TestCaseError::fail)?;
                let json = serde_json::to_string_pretty(&def).unwrap();
                let back: MixDef = serde_json::from_str(&json).unwrap();
                assert_eq!(back, def, "def round-trips");
                assert_eq!(back.build().unwrap(), def.build().unwrap(), "built mix round-trips");
            }

            #[test]
            fn scenario_defs_round_trip(
                requests in 1usize..100_000,
                load in 0.05f64..8.0,
                seed in 0u64..u64::MAX,
                profile in 0usize..3,
                pin_flag in 0usize..2,
                epsilon in 0.0f64..8.0,
                refine in 1usize..64,
                quant in 0.25f64..4.0,
            ) {
                let process = ["poisson", "bursty", "drift"][profile];
                let pin_serving = pin_flag == 1;
                let def = ScenarioDef {
                    schema: REGISTRY_SCHEMA.to_string(),
                    kind: "scenario".to_string(),
                    name: "prop-scenario".to_string(),
                    description: Some("randomized".to_string()),
                    platform: "S2".to_string(),
                    mix: "standard".to_string(),
                    traffic: TrafficDef {
                        process: process.to_string(),
                        requests: Some(requests),
                        offered_load: Some(load),
                        seed: Some(seed),
                    },
                    serving: pin_serving.then_some(ServingDef {
                        cache_epsilon: Some(epsilon),
                        refine_budget: Some(refine),
                        quant_step: Some(quant),
                        sla_x: None,
                    }),
                };
                def.validate().map_err(proptest::TestCaseError::fail)?;
                let json = serde_json::to_string_pretty(&def).unwrap();
                let back: ScenarioDef = serde_json::from_str(&json).unwrap();
                assert_eq!(back, def, "def round-trips");
            }
        }
    }

    #[test]
    fn rejects_out_of_range_traffic_values() {
        let mut def = builtin::builtin_scenario_defs()[0].clone();
        def.traffic.process = "uniform".into();
        assert!(def.validate().unwrap_err().contains("arrival process"));

        let mut def = builtin::builtin_scenario_defs()[0].clone();
        def.traffic.requests = Some(0);
        assert!(def.validate().is_err());

        let mut def = builtin::builtin_scenario_defs()[0].clone();
        def.traffic.offered_load = Some(f64::NAN);
        assert!(def.validate().is_err());

        let mut def = builtin::builtin_scenario_defs()[0].clone();
        def.platform = "  ".into();
        assert!(def.validate().is_err());
    }
}
