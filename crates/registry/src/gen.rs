//! The scenario-space generator: sweeps platform scale (edge-SoC duos
//! through 64-core asymmetric-bandwidth meshes), tenant-mix shape (weighted
//! service mixes through 512-tenant synthetic fleets) and traffic profile
//! (steady / flash-crowd / model-release-day) and emits valid registry
//! definition files.
//!
//! [`write_tree`] lays down the full committed `scenarios/` layout:
//!
//! ```text
//! scenarios/
//! ├── platforms/   s1.json … s6.json           (builtin, Table III)
//! ├── mixes/       standard.json, repeated_tenant.json
//! ├── traffic/     poisson_mix.json … drift_mix.json
//! └── generated/
//!     ├── platforms/  edge-duo.json … dc-mesh64-asymbw.json
//!     ├── mixes/      web-weighted.json … synth-512.json
//!     └── traffic/    {platform}-{steady,flash-crowd,model-release-day}.json
//! ```

use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::builtin;
use crate::defs::{
    CoreDef, MixDef, PlatformDef, ScenarioDef, ServingDef, SyntheticMixDef, TenantDef, TrafficDef,
};
use crate::REGISTRY_SCHEMA;
use magma_model::zoo;

/// Shorthand for a fixed-shape core class with default columns/SL/frequency.
fn core(name: &str, count: usize, pe_rows: usize, dataflow: &str, sg_kb: usize) -> CoreDef {
    CoreDef {
        name: name.to_string(),
        count: Some(count),
        pe_rows,
        pe_cols: None,
        dataflow: dataflow.to_string(),
        sg_kb,
        sl_bytes: None,
        frequency_mhz: None,
        flexible: None,
    }
}

fn platform(name: &str, description: &str, bw_gbps: f64, cores: Vec<CoreDef>) -> PlatformDef {
    PlatformDef {
        schema: REGISTRY_SCHEMA.to_string(),
        kind: "platform".to_string(),
        name: name.to_string(),
        description: Some(description.to_string()),
        system_bw_gbps: bw_gbps,
        cores,
    }
}

/// The generated platform sweep: edge SoCs (DDR1-class bandwidth, one or
/// two small cores) up through data-center meshes (Table III core classes
/// scaled out to 64 cores, including a bandwidth-starved asymmetric
/// variant).
pub fn generated_platform_defs() -> Vec<PlatformDef> {
    vec![
        platform(
            "edge-duo",
            "Edge SoC duo: one HB + one LB small core on 2 GB/s (DDR1-class) bandwidth.",
            2.0,
            vec![core("edge-duo-hb0", 1, 32, "hb", 146), core("edge-duo-lb0", 1, 32, "lb", 110)],
        ),
        platform(
            "edge-duo-lowbw",
            "The edge duo starved to 1 GB/s — the bandwidth knee of the Small-class sweep.",
            1.0,
            vec![
                core("edge-duo-lowbw-hb0", 1, 32, "hb", 146),
                core("edge-duo-lowbw-lb0", 1, 32, "lb", 110),
            ],
        ),
        platform(
            "edge-quad",
            "Edge quad (an S2-shaped SoC) on 8 GB/s.",
            8.0,
            vec![core("edge-quad-hb", 3, 32, "hb", 146), core("edge-quad-lb0", 1, 32, "lb", 110)],
        ),
        platform(
            "mobile-biglittle",
            "Mobile big.LITTLE: two 64-row HB cores plus two 32-row LB cores on 16 GB/s.",
            16.0,
            vec![core("mob-big-hb", 2, 64, "hb", 291), core("mob-lit-lb", 2, 32, "lb", 110)],
        ),
        platform(
            "dc-mesh16",
            "Data-center 16-core mesh: 14 HB + 2 LB large cores on 256 GB/s (HBM-class).",
            256.0,
            vec![core("mesh16-hb", 14, 128, "hb", 580), core("mesh16-lb", 2, 128, "lb", 434)],
        ),
        platform(
            "dc-mesh32-biglittle",
            "Data-center 32-core big.LITTLE mesh (an S6 scaled 2×) on 256 GB/s.",
            256.0,
            vec![
                core("mesh32-big-hb", 12, 128, "hb", 580),
                core("mesh32-big-lb", 4, 128, "lb", 434),
                core("mesh32-lit-hb", 12, 64, "hb", 291),
                core("mesh32-lit-lb", 4, 64, "lb", 218),
            ],
        ),
        platform(
            "dc-mesh64-asymbw",
            "64-core asymmetric-bandwidth mesh: 32 big (128-row) + 32 little (64-row) cores \
             mixing HB and LB dataflow classes on 256 GB/s shared bandwidth.",
            256.0,
            vec![
                core("mesh64-big-hb", 24, 128, "hb", 580),
                core("mesh64-big-lb", 8, 128, "lb", 434),
                core("mesh64-lit-hb", 24, 64, "hb", 291),
                core("mesh64-lit-lb", 8, 64, "lb", 218),
            ],
        ),
        platform(
            "dc-mesh64-asymbw-starved",
            "The 64-core asymmetric mesh on 64 GB/s — bandwidth contention dominates.",
            64.0,
            vec![
                core("mesh64s-big-hb", 24, 128, "hb", 580),
                core("mesh64s-big-lb", 8, 128, "lb", 434),
                core("mesh64s-lit-hb", 24, 64, "hb", 291),
                core("mesh64s-lit-lb", 8, 64, "lb", 218),
            ],
        ),
    ]
}

/// The model names of one zoo category.
fn names(models: Vec<magma_model::Model>) -> Vec<String> {
    models.into_iter().map(|m| m.name().to_string()).collect()
}

/// The generated mix sweep: a weighted web-service mix with per-tenant SLA
/// contracts, a vision-only burst service, and synthetic fleets at 64 and
/// 512 tenants.
pub fn generated_mix_defs() -> Vec<MixDef> {
    let mix = |name: &str, description: &str, tenants: Option<Vec<TenantDef>>, synthetic| MixDef {
        schema: REGISTRY_SCHEMA.to_string(),
        kind: "mix".to_string(),
        name: name.to_string(),
        description: Some(description.to_string()),
        tenants,
        synthetic,
        default_sla_multiplier: None,
    };
    let tenant =
        |name: &str, task: &str, models: Vec<String>, weight: f64, sla: Option<f64>| TenantDef {
            name: name.to_string(),
            task: task.to_string(),
            models,
            weight,
            sla_multiplier: sla,
        };
    vec![
        mix(
            "web-weighted",
            "Vision-heavy web serving: a latency-critical vision tenant at 3× traffic \
             (SLA ×0.5), language at baseline, a batch-tolerant recommendation tail \
             (SLA ×2).",
            Some(vec![
                tenant("vision", "vision", names(zoo::vision_models()), 3.0, Some(0.5)),
                tenant("language", "language", names(zoo::language_models()), 1.0, None),
                tenant(
                    "recommendation",
                    "recommendation",
                    names(zoo::recommendation_models()),
                    0.5,
                    Some(2.0),
                ),
            ]),
            None,
        ),
        mix(
            "vision-burst",
            "A single mobile-vision service — small recurring models, cache-friendly.",
            Some(vec![tenant(
                "vision",
                "vision",
                vec!["MobileNetV2".to_string(), "ShuffleNet".to_string()],
                1.0,
                None,
            )]),
            None,
        ),
        mix(
            "synth-64",
            "64 synthetic tenants (Zipf-weighted single-model services, seeded SLA \
             contracts).",
            None,
            Some(SyntheticMixDef { tenants: 64, seed: 7 }),
        ),
        mix(
            "synth-512",
            "512 synthetic tenants — the fleet-scale long tail.",
            None,
            Some(SyntheticMixDef { tenants: 512, seed: 11 }),
        ),
    ]
}

/// The traffic profiles every generated platform is crossed with:
/// `(suffix, process, offered_load, description)`.
pub const TRAFFIC_PROFILES: [(&str, &str, f64, &str); 3] = [
    ("steady", "poisson", 0.7, "Steady-state Poisson arrivals at 70% offered load."),
    (
        "flash-crowd",
        "bursty",
        3.0,
        "Flash crowd: bursty arrivals at 3× the sustainable rate — deadline-path and \
         admission stress.",
    ),
    (
        "model-release-day",
        "drift",
        1.2,
        "Model release day: tenant mix drifts vision→language at 1.2× load — cached \
         mappings invalidate mid-trace.",
    ),
];

/// The mixes the scenario cross-product cycles through (builtin `standard`
/// plus the generated mixes).
const SCENARIO_MIX_CYCLE: [&str; 5] =
    ["standard", "web-weighted", "vision-burst", "synth-64", "synth-512"];

/// The generated scenario cross-product: every generated platform × every
/// traffic profile, with tenant mixes cycled so each mix shape is exercised
/// (8 platforms × 3 profiles = 24 scenarios). Scale knobs (`requests`,
/// `seed`) are inherited from the environment so the same files serve smoke
/// runs and full benchmarks.
pub fn generated_scenario_defs() -> Vec<ScenarioDef> {
    let platforms = generated_platform_defs();
    let mut scenarios = Vec::new();
    for (i, platform) in platforms.iter().enumerate() {
        let mix = SCENARIO_MIX_CYCLE[i % SCENARIO_MIX_CYCLE.len()];
        for (suffix, process, load, description) in TRAFFIC_PROFILES {
            scenarios.push(ScenarioDef {
                schema: REGISTRY_SCHEMA.to_string(),
                kind: "scenario".to_string(),
                name: format!("{}-{suffix}", platform.name),
                description: Some(format!("{description} Platform: {}.", platform.name)),
                platform: platform.name.clone(),
                mix: mix.to_string(),
                traffic: TrafficDef {
                    process: process.to_string(),
                    requests: None,
                    offered_load: Some(load),
                    seed: None,
                },
                // Model-release-day pins its serving config: drift
                // invalidates cached mappings, so these scenarios widen the
                // near-hit probe and buy a bigger refine budget.
                serving: (suffix == "model-release-day").then_some(ServingDef {
                    cache_epsilon: Some(2.0),
                    refine_budget: Some(12),
                    quant_step: None,
                    sla_x: None,
                }),
            });
        }
    }
    scenarios
}

/// Serializes one definition to its committed file form (pretty JSON plus a
/// trailing newline).
fn render<T: Serialize>(def: &T) -> String {
    let mut text = serde_json::to_string_pretty(def).unwrap_or_default();
    text.push('\n');
    text
}

fn write_defs<T: Serialize>(
    dir: &Path,
    defs: &[(String, T)],
    written: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, def) in defs {
        let path = dir.join(format!("{}.json", name.to_lowercase()));
        std::fs::write(&path, render(def))?;
        written.push(path);
    }
    Ok(())
}

fn keyed<T: Clone>(defs: Vec<T>, name: impl Fn(&T) -> String) -> Vec<(String, T)> {
    defs.into_iter()
        .map(|d| {
            let n = name(&d);
            (n, d)
        })
        .collect()
}

/// Writes the full registry tree (builtin + generated definitions) under
/// `root`, returning every file written. Overwrites existing files — the
/// committed tree is regenerated, never hand-edited.
pub fn write_tree(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    write_defs(
        &root.join("platforms"),
        &keyed(builtin::builtin_platform_defs(), |d| d.name.clone()),
        &mut written,
    )?;
    write_defs(
        &root.join("mixes"),
        &keyed(builtin::builtin_mix_defs(), |d| d.name.clone()),
        &mut written,
    )?;
    write_defs(
        &root.join("traffic"),
        &keyed(builtin::builtin_scenario_defs(), |d| d.name.clone()),
        &mut written,
    )?;
    let generated = root.join("generated");
    write_defs(
        &generated.join("platforms"),
        &keyed(generated_platform_defs(), |d| d.name.clone()),
        &mut written,
    )?;
    write_defs(
        &generated.join("mixes"),
        &keyed(generated_mix_defs(), |d| d.name.clone()),
        &mut written,
    )?;
    write_defs(
        &generated.join("traffic"),
        &keyed(generated_scenario_defs(), |d| d.name.clone()),
        &mut written,
    )?;
    written.sort();
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_defs_validate_and_span_the_acceptance_space() {
        let platforms = generated_platform_defs();
        for def in &platforms {
            def.validate().unwrap_or_else(|e| panic!("{}: {e}", def.name));
        }
        // The acceptance criteria demand a 64-core asymmetric-BW mesh…
        let mesh = platforms.iter().find(|p| p.name == "dc-mesh64-asymbw").expect("64-core mesh");
        assert_eq!(mesh.core_count(), 64);
        let styles: std::collections::BTreeSet<&str> =
            mesh.cores.iter().map(|c| c.dataflow.as_str()).collect();
        assert!(styles.len() > 1, "mixes HB and LB core classes");
        // …and an edge-SoC duo at the other end.
        let duo = platforms.iter().find(|p| p.name == "edge-duo").expect("edge duo");
        assert_eq!(duo.core_count(), 2);

        for def in generated_mix_defs() {
            def.validate().unwrap_or_else(|e| panic!("{}: {e}", def.name));
        }
        let scenarios = generated_scenario_defs();
        assert!(scenarios.len() >= 20, "scenario explosion: {}", scenarios.len());
        for def in &scenarios {
            def.validate().unwrap_or_else(|e| panic!("{}: {e}", def.name));
        }
        assert!(
            scenarios.iter().any(|s| s.name == "dc-mesh64-asymbw-flash-crowd"),
            "flash-crowd trace on the 64-core mesh exists"
        );
    }

    #[test]
    fn tree_writer_emits_every_definition_once() {
        let dir =
            std::env::temp_dir().join(format!("magma-registry-gen-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_tree(&dir).expect("writes");
        let expected = builtin::builtin_platform_defs().len()
            + builtin::builtin_mix_defs().len()
            + builtin::builtin_scenario_defs().len()
            + generated_platform_defs().len()
            + generated_mix_defs().len()
            + generated_scenario_defs().len();
        assert_eq!(written.len(), expected);
        assert!(written.iter().all(|p| p.exists()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
