//! magma-registry — the declarative platform / tenant-mix / traffic-scenario
//! registry.
//!
//! The hardcoded experiment space (Table III's S1–S6 platforms, the standard
//! tenant mixes, the Poisson/bursty/drift arrival ladders) is re-expressed
//! here as **data**: JSON definition files under a committed `scenarios/`
//! tree, loaded and validated by a [`Registry`], and resolved into runnable
//! [`CustomScenario`](magma_serve::CustomScenario) values that
//! `serve_sim` / `fleet_sim` / `cache_sweep` accept via `--scenario <file>`
//! without recompilation.
//!
//! ```text
//!  scenarios/                       Registry::load_dir
//!  ├── platforms/*.json   ──────▶   PlatformDef  ─┐
//!  ├── mixes/*.json       ──────▶   MixDef       ─┤  cross-ref + range
//!  ├── traffic/*.json     ──────▶   ScenarioDef  ─┘  validation
//!  └── generated/...                     │
//!                                        ▼  Registry::resolve
//!                                ResolvedScenario
//!                                 (AcceleratorPlatform + TenantMix +
//!                                  Scenario + ScenarioDescriptor)
//! ```
//!
//! # Definition files
//!
//! Every file carries `"schema": "magma-registry/v1"` and a `"kind"`
//! (`platform` / `mix` / `scenario`); unknown schemas and kinds are rejected
//! with actionable errors, as are out-of-range values (zero PE dims,
//! non-positive bandwidth, zero weights), dangling cross-references
//! (a scenario naming an unknown platform or mix, a mix naming a model the
//! zoo does not have) and duplicate names. `null` on an optional field means
//! "use the default" — the vendored mini-serde serializes `None` as an
//! explicit `null`, so committed files spell defaults out.
//!
//! # Equivalence guarantee
//!
//! The committed tree's `platforms/s*.json`, `mixes/{standard,
//! repeated_tenant}.json` and `traffic/*.json` are the [`builtin`]
//! definitions verbatim; `tests/integration_registry.rs` locks down that
//! registry-resolved S1–S6 platforms, mixes and traffic scenarios are
//! **bit-identical** to the hardcoded ones (same
//! [`AcceleratorPlatform`](magma_platform::AcceleratorPlatform), same trace
//! event stream, same `BENCH` scenario results).
//!
//! # Generator
//!
//! [`gen`] sweeps the design space — edge-SoC duos through 64-core
//! asymmetric-bandwidth meshes, flash-crowd / model-release-day / drift
//! traffic — and emits valid registry files under `scenarios/generated/`;
//! the `scenario_gen` bench bin writes the tree and `scenario_gen --check`
//! re-validates every committed file (CI's `registry_check` gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod defs;
pub mod error;
pub mod gen;
mod registry;

pub use defs::{
    CoreDef, MixDef, PlatformDef, ScenarioDef, ServingDef, SyntheticMixDef, TenantDef, TrafficDef,
};
pub use error::RegistryError;
pub use registry::{resolve_scenario_file, Registry, RegistryStats, ResolvedScenario};

/// Schema tag every registry definition file must carry.
pub const REGISTRY_SCHEMA: &str = "magma-registry/v1";

/// The definition kinds the registry understands, in load order.
pub const REGISTRY_KINDS: [&str; 3] = ["platform", "mix", "scenario"];

/// The default committed registry root, relative to the repository root.
pub const DEFAULT_SCENARIO_DIR: &str = "scenarios";

/// The registry root directory: `MAGMA_SCENARIO_DIR` if set (and non-empty),
/// else [`DEFAULT_SCENARIO_DIR`].
pub fn magma_scenario_dir() -> std::path::PathBuf {
    match std::env::var("MAGMA_SCENARIO_DIR") {
        Ok(dir) if !dir.trim().is_empty() => std::path::PathBuf::from(dir),
        _ => std::path::PathBuf::from(DEFAULT_SCENARIO_DIR),
    }
}
