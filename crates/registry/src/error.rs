//! Registry error type: every rejection the loader can produce, each with an
//! actionable message (what file, what was found, what would be accepted).

use std::fmt;
use std::path::PathBuf;

/// Why a registry load, validation or resolution was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// A filesystem operation failed (missing directory, unreadable file).
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying OS error text.
        message: String,
    },
    /// A file was not parseable into its definition type.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// What the JSON/def parser reported.
        message: String,
    },
    /// A file carried a schema tag this loader does not understand.
    UnknownSchema {
        /// The offending file.
        path: PathBuf,
        /// The schema string found (or a placeholder when absent).
        found: String,
    },
    /// A file carried a `kind` outside [`crate::REGISTRY_KINDS`].
    UnknownKind {
        /// The offending file.
        path: PathBuf,
        /// The kind string found (or a placeholder when absent).
        found: String,
    },
    /// A definition parsed but failed range/consistency validation.
    Invalid {
        /// The offending file.
        path: PathBuf,
        /// The definition's `name` field.
        name: String,
        /// What was out of range or inconsistent.
        message: String,
    },
    /// A definition referenced a name that does not exist.
    DanglingRef {
        /// The file holding the reference.
        path: PathBuf,
        /// What namespace the reference points into
        /// (`"platform"` / `"mix"` / `"model"`).
        ref_kind: &'static str,
        /// The dangling name.
        reference: String,
        /// The definition doing the referencing.
        from: String,
        /// The names that *do* exist in that namespace.
        known: Vec<String>,
    },
    /// Two files defined the same `(kind, name)` pair.
    Duplicate {
        /// The definition kind.
        kind: &'static str,
        /// The colliding name.
        name: String,
        /// The second file (the one rejected).
        path: PathBuf,
        /// The file that registered the name first.
        prior: PathBuf,
    },
    /// A lookup asked for a name the registry does not hold.
    UnknownName {
        /// The definition kind looked up.
        kind: &'static str,
        /// The requested name.
        name: String,
        /// The names the registry does hold for that kind.
        known: Vec<String>,
    },
}

/// Renders a name list for error text, truncated so a 512-tenant registry
/// does not dump its whole namespace into one message.
fn known_list(known: &[String]) -> String {
    const SHOW: usize = 12;
    if known.is_empty() {
        return "none are defined".to_string();
    }
    let head: Vec<&str> = known.iter().take(SHOW).map(String::as_str).collect();
    if known.len() > SHOW {
        format!("known: {} … ({} total)", head.join(", "), known.len())
    } else {
        format!("known: {}", head.join(", "))
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, message } => {
                write!(f, "registry I/O error at {}: {message}", path.display())
            }
            RegistryError::Parse { path, message } => {
                write!(f, "registry parse error in {}: {message}", path.display())
            }
            RegistryError::UnknownSchema { path, found } => write!(
                f,
                "{}: unknown schema {found:?} (this loader reads {:?}; regenerate the file \
                 with `scenario_gen` or migrate it by hand)",
                path.display(),
                crate::REGISTRY_SCHEMA
            ),
            RegistryError::UnknownKind { path, found } => write!(
                f,
                "{}: unknown kind {found:?} (expected one of {:?})",
                path.display(),
                crate::REGISTRY_KINDS
            ),
            RegistryError::Invalid { path, name, message } => {
                write!(f, "{}: definition {name:?} is invalid: {message}", path.display())
            }
            RegistryError::DanglingRef { path, ref_kind, reference, from, known } => write!(
                f,
                "{}: {from:?} references {ref_kind} {reference:?}, which does not exist ({})",
                path.display(),
                known_list(known)
            ),
            RegistryError::Duplicate { kind, name, path, prior } => write!(
                f,
                "{}: duplicate {kind} {name:?} (first defined in {})",
                path.display(),
                prior.display()
            ),
            RegistryError::UnknownName { kind, name, known } => {
                write!(f, "no {kind} named {name:?} in the registry ({})", known_list(known))
            }
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = RegistryError::UnknownSchema {
            path: PathBuf::from("scenarios/platforms/s1.json"),
            found: "magma-registry/v9".into(),
        };
        let text = e.to_string();
        assert!(text.contains("magma-registry/v9"), "names what was found: {text}");
        assert!(text.contains(crate::REGISTRY_SCHEMA), "names what is accepted: {text}");

        let e = RegistryError::DanglingRef {
            path: PathBuf::from("scenarios/traffic/x.json"),
            ref_kind: "platform",
            reference: "S9".into(),
            from: "x".into(),
            known: vec!["S1".into(), "S2".into()],
        };
        let text = e.to_string();
        assert!(text.contains("S9") && text.contains("S1"), "lists alternatives: {text}");
    }

    #[test]
    fn long_known_lists_are_truncated() {
        let known: Vec<String> = (0..40).map(|i| format!("m{i}")).collect();
        let e = RegistryError::UnknownName { kind: "mix", name: "zzz".into(), known };
        let text = e.to_string();
        assert!(text.contains("(40 total)"), "{text}");
        assert!(!text.contains("m30"), "tail omitted: {text}");
    }
}
