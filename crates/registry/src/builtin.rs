//! The builtin definitions: the hardcoded experiment space (Table III's
//! S1–S6, the standard tenant mixes, the serve ladder's arrival scenarios)
//! re-expressed as registry definitions.
//!
//! These are the source of truth for the committed `scenarios/platforms`,
//! `scenarios/mixes` and `scenarios/traffic` files (`scenario_gen` writes
//! them; the equivalence suite re-parses the committed files and asserts
//! they still equal these constructors), and the unit tests in [`crate::defs`]
//! assert they **build bit-identical** runtime values to the hardcoded
//! constructors — so the registry path and the hardcoded path cannot drift
//! apart silently.

use crate::defs::{CoreDef, MixDef, PlatformDef, ScenarioDef, TenantDef, TrafficDef};
use crate::REGISTRY_SCHEMA;
use magma_model::zoo;
use magma_platform::Setting;

/// Shorthand for a core class with Table III defaults (64 columns, default
/// SL/frequency, fixed shape).
fn core(name: &str, count: usize, pe_rows: usize, dataflow: &str, sg_kb: usize) -> CoreDef {
    CoreDef {
        name: name.to_string(),
        count: Some(count),
        pe_rows,
        pe_cols: None,
        dataflow: dataflow.to_string(),
        sg_kb,
        sl_bytes: None,
        frequency_mhz: None,
        flexible: None,
    }
}

/// The registry definition of one Table III setting; builds bit-identical
/// to [`magma_platform::settings::build`].
pub fn platform_def_for(setting: Setting) -> PlatformDef {
    let cores = match setting {
        Setting::S1 => vec![core("S1-hb", 4, 32, "hb", 146)],
        Setting::S2 => vec![core("S2-hb", 3, 32, "hb", 146), core("S2-lb0", 1, 32, "lb", 110)],
        Setting::S3 => vec![core("S3-hb", 8, 128, "hb", 580)],
        Setting::S4 => vec![core("S4-hb", 7, 128, "hb", 580), core("S4-lb0", 1, 128, "lb", 434)],
        Setting::S5 => vec![
            core("S5-big-hb", 3, 128, "hb", 580),
            core("S5-big-lb0", 1, 128, "lb", 434),
            core("S5-lit-hb", 3, 64, "hb", 291),
            core("S5-lit-lb0", 1, 64, "lb", 218),
        ],
        Setting::S6 => vec![
            core("S6-big-hb", 7, 128, "hb", 580),
            core("S6-big-lb0", 1, 128, "lb", 434),
            core("S6-lit-hb", 7, 64, "hb", 291),
            core("S6-lit-lb0", 1, 64, "lb", 218),
        ],
    };
    PlatformDef {
        schema: REGISTRY_SCHEMA.to_string(),
        kind: "platform".to_string(),
        name: setting.to_string(),
        description: Some(format!("Table III {setting}: {}", setting.description())),
        system_bw_gbps: setting.default_bw_gbps(),
        cores,
    }
}

/// All six Table III platform definitions.
pub fn builtin_platform_defs() -> Vec<PlatformDef> {
    Setting::ALL.into_iter().map(platform_def_for).collect()
}

/// The zoo's model names for one task category.
fn model_names(models: Vec<magma_model::Model>) -> Vec<String> {
    models.into_iter().map(|m| m.name().to_string()).collect()
}

/// The builtin mix definitions: `standard` (one tenant per pure task
/// category, the serving analogue of the paper's Mix task —
/// [`magma_model::TenantMix::standard`]) and `repeated_tenant` (the single
/// recurring-service mix behind the cache-economics scenario).
pub fn builtin_mix_defs() -> Vec<MixDef> {
    let tenant = |name: &str, task: &str, models: Vec<String>| TenantDef {
        name: name.to_string(),
        task: task.to_string(),
        models,
        weight: 1.0,
        sla_multiplier: None,
    };
    vec![
        MixDef {
            schema: REGISTRY_SCHEMA.to_string(),
            kind: "mix".to_string(),
            name: "standard".to_string(),
            description: Some(
                "One equally weighted tenant per pure task category (the paper's Mix task, \
                 served online)."
                    .to_string(),
            ),
            tenants: Some(vec![
                tenant("vision", "vision", model_names(zoo::vision_models())),
                tenant("language", "language", model_names(zoo::language_models())),
                tenant(
                    "recommendation",
                    "recommendation",
                    model_names(zoo::recommendation_models()),
                ),
            ]),
            synthetic: None,
            default_sla_multiplier: None,
        },
        MixDef {
            schema: REGISTRY_SCHEMA.to_string(),
            kind: "mix".to_string(),
            name: "repeated_tenant".to_string(),
            description: Some(
                "A single small-model tenant whose job windows recur — the repeated-tenant \
                 traffic where the signature-keyed mapping cache pays off."
                    .to_string(),
            ),
            tenants: Some(vec![tenant(
                "recommendation",
                "recommendation",
                vec!["NCF".to_string()],
            )]),
            synthetic: None,
            default_sla_multiplier: None,
        },
    ]
}

/// A traffic block with no scale overrides (inherits the serving knobs, so
/// the registry run matches the hardcoded ladder bit-for-bit).
fn inherit_traffic(process: &str) -> TrafficDef {
    TrafficDef { process: process.to_string(), requests: None, offered_load: None, seed: None }
}

/// The builtin scenario definitions: the standard serve ladder
/// (`poisson_mix`, `repeated_tenant`, and the full-mode `bursty_mix` /
/// `drift_mix`) on the paper's default online platform S2, with traffic
/// scale inherited from the knobs.
pub fn builtin_scenario_defs() -> Vec<ScenarioDef> {
    let scenario = |name: &str, mix: &str, process: &str, description: &str| ScenarioDef {
        schema: REGISTRY_SCHEMA.to_string(),
        kind: "scenario".to_string(),
        name: name.to_string(),
        description: Some(description.to_string()),
        platform: "S2".to_string(),
        mix: mix.to_string(),
        traffic: inherit_traffic(process),
        serving: None,
    };
    vec![
        scenario(
            "poisson_mix",
            "standard",
            "poisson",
            "Stationary multi-tenant Poisson traffic on S2 (the standard ladder's first rung).",
        ),
        scenario(
            "repeated_tenant",
            "repeated_tenant",
            "poisson",
            "Recurring single-tenant windows on S2 — the cache-economics scenario.",
        ),
        scenario(
            "bursty_mix",
            "standard",
            "bursty",
            "Diurnal burst traffic on S2 — deadline-path stress (full ladder only).",
        ),
        scenario(
            "drift_mix",
            "standard",
            "drift",
            "Vision-to-language tenant drift on S2 — cache invalidation under drift \
             (full ladder only).",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_defs_validate() {
        for def in builtin_platform_defs() {
            def.validate().unwrap_or_else(|e| panic!("{}: {e}", def.name));
        }
        for def in builtin_mix_defs() {
            def.validate().unwrap_or_else(|e| panic!("{}: {e}", def.name));
        }
        for def in builtin_scenario_defs() {
            def.validate().unwrap_or_else(|e| panic!("{}: {e}", def.name));
        }
    }

    #[test]
    fn builtin_scenarios_mirror_the_serve_ladder() {
        let defs = builtin_scenario_defs();
        let names: Vec<String> = defs.iter().map(|d| d.name.clone()).collect();
        assert_eq!(names, ["poisson_mix", "repeated_tenant", "bursty_mix", "drift_mix"]);
        assert!(defs.iter().all(|d| d.platform == "S2"));
        assert!(defs.iter().all(|d| d.traffic.requests.is_none()
            && d.traffic.offered_load.is_none()
            && d.traffic.seed.is_none()));
    }
}
