//! The validating loader: walks a `scenarios/` tree, parses every `*.json`
//! into its definition type, range-checks each, rejects duplicates and
//! dangling cross-references, and resolves scenario definitions into
//! runnable values.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use magma_model::{zoo, TenantMix};
use magma_platform::{AcceleratorPlatform, PlatformSpec};
use magma_serve::{CustomScenario, Scenario, ScenarioDescriptor};
use serde::{Deserialize, Value};

use crate::defs::{def_value, MixDef, PlatformDef, ScenarioDef};
use crate::error::RegistryError;
use crate::{magma_scenario_dir, REGISTRY_SCHEMA};

/// A loaded, fully validated registry: platform / mix / scenario definitions
/// keyed by name, each remembering the file it came from.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    platforms: BTreeMap<String, (PathBuf, PlatformDef)>,
    mixes: BTreeMap<String, (PathBuf, MixDef)>,
    scenarios: BTreeMap<String, (PathBuf, ScenarioDef)>,
}

/// What a registry holds, for `scenario_gen --check` reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Number of platform definitions.
    pub platforms: usize,
    /// Number of mix definitions.
    pub mixes: usize,
    /// Number of scenario definitions.
    pub scenarios: usize,
}

/// A scenario resolved against its registry: the built runtime values plus
/// the self-describing descriptor that lands in `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct ResolvedScenario {
    /// The scenario's registry name.
    pub name: String,
    /// The arrival process.
    pub scenario: Scenario,
    /// The platform definition the scenario referenced.
    pub platform_def: PlatformDef,
    /// The built platform.
    pub platform: AcceleratorPlatform,
    /// The built tenant mix.
    pub mix: TenantMix,
    /// Trace-length override (`None` inherits the knobs).
    pub requests: Option<usize>,
    /// Offered-load override (`None` inherits the knobs).
    pub offered_load: Option<f64>,
    /// Seed override (`None` inherits the knobs).
    pub seed: Option<u64>,
    /// Near-hit epsilon override (`None` inherits the knobs).
    pub cache_epsilon: Option<f64>,
    /// Refine-budget override (`None` inherits the knobs).
    pub refine_budget: Option<usize>,
    /// Quantization-step override (`None` inherits the knobs).
    pub quant_step: Option<f64>,
    /// SLA-multiplier override (`None` inherits the knobs).
    pub sla_x: Option<f64>,
    /// The descriptor embedding the full resolved definitions.
    pub descriptor: ScenarioDescriptor,
}

impl ResolvedScenario {
    /// The [`CustomScenario`] value the serving entry points
    /// (`run_custom_scenario` / `run_fleet_custom` /
    /// `run_cache_sweep_custom`) consume.
    pub fn custom(&self) -> CustomScenario {
        CustomScenario {
            name: self.name.clone(),
            scenario: self.scenario,
            mix: self.mix.clone(),
            platform: PlatformSpec::Custom(self.platform.clone()),
            requests: self.requests,
            offered_load: self.offered_load,
            seed: self.seed,
            cache_epsilon: self.cache_epsilon,
            refine_budget: self.refine_budget,
            quant_step: self.quant_step,
            sla_x: self.sla_x,
            descriptor: self.descriptor.clone(),
        }
    }
}

/// Recursively collects every `*.json` under `dir`, sorted for a
/// deterministic load (and therefore deterministic first-error reporting).
fn collect_json_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), RegistryError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| RegistryError::Io { path: dir.to_path_buf(), message: e.to_string() })?;
    for entry in entries {
        let entry = entry
            .map_err(|e| RegistryError::Io { path: dir.to_path_buf(), message: e.to_string() })?;
        let path = entry.path();
        if path.is_dir() {
            collect_json_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Parses one registry file into a raw [`Value`] and checks its schema tag,
/// returning the value and its `kind` string.
fn parse_registry_file(path: &Path) -> Result<(Value, String), RegistryError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RegistryError::Io { path: path.to_path_buf(), message: e.to_string() })?;
    let value: Value = serde_json::from_str(&text)
        .map_err(|e| RegistryError::Parse { path: path.to_path_buf(), message: e.to_string() })?;
    let schema = match value.get("schema") {
        Value::Str(s) => s.clone(),
        Value::Null => "<missing schema field>".to_string(),
        other => format!("<non-string schema: {other:?}>"),
    };
    if schema != REGISTRY_SCHEMA {
        return Err(RegistryError::UnknownSchema { path: path.to_path_buf(), found: schema });
    }
    let kind = match value.get("kind") {
        Value::Str(s) => s.clone(),
        Value::Null => "<missing kind field>".to_string(),
        other => format!("<non-string kind: {other:?}>"),
    };
    Ok((value, kind))
}

/// Parses + range-checks one definition of a known type.
fn parse_def<T>(
    path: &Path,
    value: &Value,
    validate: impl Fn(&T) -> Result<(), String>,
    name_of: impl Fn(&T) -> String,
) -> Result<T, RegistryError>
where
    T: Deserialize,
{
    let def = T::from_value(value)
        .map_err(|e| RegistryError::Parse { path: path.to_path_buf(), message: e.to_string() })?;
    validate(&def).map_err(|message| RegistryError::Invalid {
        path: path.to_path_buf(),
        name: name_of(&def),
        message,
    })?;
    Ok(def)
}

impl Registry {
    /// Loads and fully validates every `*.json` under `dir` (recursively).
    ///
    /// Rejections, in check order per file: unreadable file, unparseable
    /// JSON, unknown schema, unknown kind, failed range validation,
    /// duplicate name — then, across the whole tree, dangling model
    /// references from mixes and dangling platform/mix references from
    /// scenarios.
    pub fn load_dir(dir: &Path) -> Result<Registry, RegistryError> {
        if !dir.is_dir() {
            return Err(RegistryError::Io {
                path: dir.to_path_buf(),
                message: "not a directory (set MAGMA_SCENARIO_DIR or run `scenario_gen --out` \
                          to create the registry tree)"
                    .to_string(),
            });
        }
        let mut files = Vec::new();
        collect_json_files(dir, &mut files)?;
        let mut registry = Registry::default();
        for path in files {
            registry.insert_file(&path)?;
        }
        registry.validate_cross_refs()?;
        Ok(registry)
    }

    /// Loads the registry from [`magma_scenario_dir`] (`MAGMA_SCENARIO_DIR`
    /// or the committed `scenarios/` tree).
    pub fn load_env() -> Result<Registry, RegistryError> {
        Registry::load_dir(&magma_scenario_dir())
    }

    /// Parses, validates and registers one file.
    fn insert_file(&mut self, path: &Path) -> Result<(), RegistryError> {
        let (value, kind) = parse_registry_file(path)?;
        match kind.as_str() {
            "platform" => {
                let def: PlatformDef =
                    parse_def(path, &value, PlatformDef::validate, |d| d.name.clone())?;
                if let Some((prior, _)) = self.platforms.get(&def.name) {
                    return Err(RegistryError::Duplicate {
                        kind: "platform",
                        name: def.name,
                        path: path.to_path_buf(),
                        prior: prior.clone(),
                    });
                }
                self.platforms.insert(def.name.clone(), (path.to_path_buf(), def));
            }
            "mix" => {
                let def: MixDef = parse_def(path, &value, MixDef::validate, |d| d.name.clone())?;
                if let Some((prior, _)) = self.mixes.get(&def.name) {
                    return Err(RegistryError::Duplicate {
                        kind: "mix",
                        name: def.name,
                        path: path.to_path_buf(),
                        prior: prior.clone(),
                    });
                }
                self.mixes.insert(def.name.clone(), (path.to_path_buf(), def));
            }
            "scenario" => {
                let def: ScenarioDef =
                    parse_def(path, &value, ScenarioDef::validate, |d| d.name.clone())?;
                if let Some((prior, _)) = self.scenarios.get(&def.name) {
                    return Err(RegistryError::Duplicate {
                        kind: "scenario",
                        name: def.name,
                        path: path.to_path_buf(),
                        prior: prior.clone(),
                    });
                }
                self.scenarios.insert(def.name.clone(), (path.to_path_buf(), def));
            }
            other => {
                return Err(RegistryError::UnknownKind {
                    path: path.to_path_buf(),
                    found: other.to_string(),
                })
            }
        }
        Ok(())
    }

    /// The tree-wide reference pass: every mix's model names must exist in
    /// the zoo, every scenario's platform and mix must be registered.
    fn validate_cross_refs(&self) -> Result<(), RegistryError> {
        for (path, mix) in self.mixes.values() {
            for model in mix.model_refs() {
                if zoo::by_name(model).is_none() {
                    return Err(RegistryError::DanglingRef {
                        path: path.clone(),
                        ref_kind: "model",
                        reference: model.to_string(),
                        from: mix.name.clone(),
                        known: zoo::models_for_task(magma_model::TaskType::Mix)
                            .iter()
                            .map(|m| m.name().to_string())
                            .collect(),
                    });
                }
            }
        }
        for (path, scenario) in self.scenarios.values() {
            if !self.platforms.contains_key(&scenario.platform) {
                return Err(RegistryError::DanglingRef {
                    path: path.clone(),
                    ref_kind: "platform",
                    reference: scenario.platform.clone(),
                    from: scenario.name.clone(),
                    known: self.platform_names(),
                });
            }
            if !self.mixes.contains_key(&scenario.mix) {
                return Err(RegistryError::DanglingRef {
                    path: path.clone(),
                    ref_kind: "mix",
                    reference: scenario.mix.clone(),
                    from: scenario.name.clone(),
                    known: self.mix_names(),
                });
            }
        }
        Ok(())
    }

    /// Looks up a platform definition by name.
    pub fn platform(&self, name: &str) -> Option<&PlatformDef> {
        self.platforms.get(name).map(|(_, def)| def)
    }

    /// Looks up a mix definition by name.
    pub fn mix(&self, name: &str) -> Option<&MixDef> {
        self.mixes.get(name).map(|(_, def)| def)
    }

    /// Looks up a scenario definition by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioDef> {
        self.scenarios.get(name).map(|(_, def)| def)
    }

    /// Registered platform names, sorted.
    pub fn platform_names(&self) -> Vec<String> {
        self.platforms.keys().cloned().collect()
    }

    /// Registered mix names, sorted.
    pub fn mix_names(&self) -> Vec<String> {
        self.mixes.keys().cloned().collect()
    }

    /// Registered scenario names, sorted.
    pub fn scenario_names(&self) -> Vec<String> {
        self.scenarios.keys().cloned().collect()
    }

    /// Definition counts.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            platforms: self.platforms.len(),
            mixes: self.mixes.len(),
            scenarios: self.scenarios.len(),
        }
    }

    /// Builds the runtime platform for a registered platform name.
    pub fn build_platform(&self, name: &str) -> Result<AcceleratorPlatform, RegistryError> {
        self.platform(name).map(PlatformDef::build).ok_or_else(|| RegistryError::UnknownName {
            kind: "platform",
            name: name.to_string(),
            known: self.platform_names(),
        })
    }

    /// Resolves a registered scenario by name into runnable values.
    pub fn resolve(&self, name: &str) -> Result<ResolvedScenario, RegistryError> {
        let (path, def) = self.scenarios.get(name).ok_or_else(|| RegistryError::UnknownName {
            kind: "scenario",
            name: name.to_string(),
            known: self.scenario_names(),
        })?;
        self.resolve_def(def, path)
    }

    /// Resolves a validated scenario definition against this registry's
    /// platforms and mixes. `path` is only used in error messages.
    pub fn resolve_def(
        &self,
        def: &ScenarioDef,
        path: &Path,
    ) -> Result<ResolvedScenario, RegistryError> {
        let platform_def =
            self.platform(&def.platform).ok_or_else(|| RegistryError::DanglingRef {
                path: path.to_path_buf(),
                ref_kind: "platform",
                reference: def.platform.clone(),
                from: def.name.clone(),
                known: self.platform_names(),
            })?;
        let mix_def = self.mix(&def.mix).ok_or_else(|| RegistryError::DanglingRef {
            path: path.to_path_buf(),
            ref_kind: "mix",
            reference: def.mix.clone(),
            from: def.name.clone(),
            known: self.mix_names(),
        })?;
        let invalid = |message: String| RegistryError::Invalid {
            path: path.to_path_buf(),
            name: def.name.clone(),
            message,
        };
        let scenario = def.traffic.process().map_err(&invalid)?;
        let mix = mix_def.build().map_err(&invalid)?;
        let platform = platform_def.build();
        // The descriptor embeds the *resolved* definitions — a report built
        // from this scenario is self-describing without the registry tree.
        let params = Value::Map(vec![
            ("scenario".to_string(), def_value(def)),
            ("platform".to_string(), def_value(platform_def)),
            ("mix".to_string(), def_value(mix_def)),
        ]);
        let descriptor = ScenarioDescriptor::new("registry", &def.name, params);
        Ok(ResolvedScenario {
            name: def.name.clone(),
            scenario,
            platform_def: platform_def.clone(),
            platform,
            mix,
            requests: def.traffic.requests,
            offered_load: def.traffic.offered_load,
            seed: def.traffic.seed,
            cache_epsilon: def.serving.as_ref().and_then(|s| s.cache_epsilon),
            refine_budget: def.serving.as_ref().and_then(|s| s.refine_budget),
            quant_step: def.serving.as_ref().and_then(|s| s.quant_step),
            sla_x: def.serving.as_ref().and_then(|s| s.sla_x),
            descriptor,
        })
    }
}

/// Resolves a single scenario **file** (the `--scenario <file>` path):
/// loads the registry from [`magma_scenario_dir`] for cross-references,
/// then parses, validates and resolves the file itself. The file does not
/// need to live inside the registry tree, but its platform/mix references
/// must resolve there.
pub fn resolve_scenario_file(path: &Path) -> Result<ResolvedScenario, RegistryError> {
    let registry = Registry::load_env()?;
    let (value, kind) = parse_registry_file(path)?;
    if kind != "scenario" {
        return Err(RegistryError::UnknownKind {
            path: path.to_path_buf(),
            found: format!("{kind} (expected a scenario file here)"),
        });
    }
    let def: ScenarioDef = parse_def(path, &value, ScenarioDef::validate, |d| d.name.clone())?;
    registry.resolve_def(&def, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::gen;
    use magma_platform::{settings, Setting};

    /// Writes the full builtin + generated tree under a fresh temp dir.
    fn temp_tree(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("magma-registry-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        gen::write_tree(&dir).expect("write tree");
        dir
    }

    #[test]
    fn loads_and_resolves_the_generated_tree() {
        let dir = temp_tree("load");
        let registry = Registry::load_dir(&dir).expect("loads");
        let stats = registry.stats();
        assert!(stats.platforms >= 6 + 2, "builtin + generated platforms: {stats:?}");
        assert!(stats.scenarios >= 20, "scenario explosion: {stats:?}");
        // Every registered scenario resolves (buildable platform + mix).
        for name in registry.scenario_names() {
            let resolved = registry.resolve(&name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(resolved.descriptor.validate().is_ok(), "{name}: descriptor self-checks");
            assert_eq!(resolved.descriptor.source, "registry");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_platforms_match_hardcoded_settings() {
        let dir = temp_tree("equiv");
        let registry = Registry::load_dir(&dir).expect("loads");
        for setting in Setting::ALL {
            let built = registry.build_platform(&setting.to_string()).expect("registered");
            assert_eq!(built, settings::build(setting), "{setting} drifted");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_unknown_schema_kind_duplicates_and_dangling_refs() {
        let dir =
            std::env::temp_dir().join(format!("magma-registry-test-reject-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, text: &str| {
            std::fs::write(dir.join(name), text).unwrap();
        };
        let s1 = serde_json::to_string_pretty(&builtin::platform_def_for(Setting::S1)).unwrap();
        let standard = serde_json::to_string_pretty(&builtin::builtin_mix_defs()[0]).unwrap();

        // Unknown schema version.
        write("bad_schema.json", &s1.replace("magma-registry/v1", "magma-registry/v9"));
        match Registry::load_dir(&dir) {
            Err(RegistryError::UnknownSchema { found, .. }) => {
                assert_eq!(found, "magma-registry/v9")
            }
            other => panic!("expected UnknownSchema, got {other:?}"),
        }
        std::fs::remove_file(dir.join("bad_schema.json")).unwrap();

        // Unknown kind.
        write("bad_kind.json", &s1.replace("\"platform\"", "\"chassis\""));
        assert!(matches!(
            Registry::load_dir(&dir),
            Err(RegistryError::UnknownKind { found, .. }) if found == "chassis"
        ));
        std::fs::remove_file(dir.join("bad_kind.json")).unwrap();

        // Duplicate name across two files.
        write("s1.json", &s1);
        write("s1_again.json", &s1);
        assert!(matches!(
            Registry::load_dir(&dir),
            Err(RegistryError::Duplicate { kind: "platform", .. })
        ));
        std::fs::remove_file(dir.join("s1_again.json")).unwrap();

        // Dangling model reference from a mix.
        write("bad_mix.json", &standard.replace("ResNet50", "ResNet5000"));
        match Registry::load_dir(&dir) {
            Err(RegistryError::DanglingRef { ref_kind: "model", reference, .. }) => {
                assert_eq!(reference, "ResNet5000")
            }
            other => panic!("expected dangling model ref, got {other:?}"),
        }
        std::fs::remove_file(dir.join("bad_mix.json")).unwrap();

        // Dangling platform / mix references from a scenario.
        write("standard.json", &standard);
        let scenario = serde_json::to_string_pretty(&builtin::builtin_scenario_defs()[0]).unwrap();
        write("bad_scenario.json", &scenario.replace("\"S2\"", "\"S99\""));
        assert!(matches!(
            Registry::load_dir(&dir),
            Err(RegistryError::DanglingRef { ref_kind: "platform", .. })
        ));
        std::fs::remove_file(dir.join("bad_scenario.json")).unwrap();
        write(
            "bad_scenario2.json",
            &scenario.replace("\"S2\"", "\"S1\"").replace("\"standard\"", "\"nonesuch\""),
        );
        assert!(matches!(
            Registry::load_dir(&dir),
            Err(RegistryError::DanglingRef { ref_kind: "mix", .. })
        ));
        std::fs::remove_file(dir.join("bad_scenario2.json")).unwrap();

        // Out-of-range value (zero PE rows) → Invalid.
        write(
            "zero_rows.json",
            &s1.replace("\"S1\"", "\"S1x\"").replace("\"pe_rows\": 32", "\"pe_rows\": 0"),
        );
        assert!(matches!(Registry::load_dir(&dir), Err(RegistryError::Invalid { .. })));
        std::fs::remove_file(dir.join("zero_rows.json")).unwrap();

        // Unparseable JSON → Parse.
        write("garbage.json", "{ not json");
        assert!(matches!(Registry::load_dir(&dir), Err(RegistryError::Parse { .. })));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_actionable_io_error() {
        let err = Registry::load_dir(Path::new("/nonexistent/magma-scenarios")).unwrap_err();
        match err {
            RegistryError::Io { message, .. } => assert!(message.contains("MAGMA_SCENARIO_DIR")),
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
