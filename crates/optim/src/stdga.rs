//! Standard genetic algorithm (the "stdGA" baseline of Table IV).
//!
//! Unlike MAGMA, stdGA treats the whole individual as one flat genome: a
//! single-pivot crossover cuts across the concatenated
//! (selection ‖ priority) genome, and mutation re-draws genes uniformly. The
//! paper uses mutation rate 0.1 and crossover rate 0.1.

use crate::optimizer::{Optimizer, SessionState};
use crate::session::{CoreDrive, SessionCore};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Standard GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StdGaConfig {
    /// Population size.
    pub population_size: usize,
    /// Per-gene mutation probability (paper: 0.1).
    pub mutation_rate: f64,
    /// Probability of applying the flat single-pivot crossover (paper: 0.1).
    pub crossover_rate: f64,
    /// Fraction of the population carried over as elites.
    pub elite_ratio: f64,
}

impl Default for StdGaConfig {
    fn default() -> Self {
        StdGaConfig {
            population_size: 50,
            mutation_rate: 0.1,
            crossover_rate: 0.1,
            elite_ratio: 0.2,
        }
    }
}

/// The standard genetic algorithm baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdGa {
    config: StdGaConfig,
}

impl StdGa {
    /// Creates a stdGA with the paper's hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stdGA with explicit hyper-parameters.
    pub fn with_config(config: StdGaConfig) -> Self {
        StdGa { config }
    }

    /// Flat single-pivot crossover over the concatenated genome.
    fn crossover(child: &mut Mapping, mom: &Mapping, rng: &mut StdRng) {
        let n = child.num_jobs();
        let pivot = rng.gen_range(0..2 * n);
        for i in 0..2 * n {
            if i >= pivot {
                if i < n {
                    child.accel_sel_mut()[i] = mom.accel_sel()[i];
                } else {
                    child.priority_mut()[i - n] = mom.priority()[i - n];
                }
            }
        }
    }

    fn mutate(&self, child: &mut Mapping, num_accels: usize, rng: &mut StdRng) {
        let n = child.num_jobs();
        for i in 0..n {
            if rng.gen::<f64>() < self.config.mutation_rate {
                child.accel_sel_mut()[i] = rng.gen_range(0..num_accels);
            }
            if rng.gen::<f64>() < self.config.mutation_rate {
                child.priority_mut()[i] = rng.gen_range(0.0..1.0);
            }
        }
    }
}

impl Optimizer for StdGa {
    fn name(&self) -> &str {
        "stdGA"
    }

    fn open(&self, problem: &dyn MappingProblem, _rng: &mut StdRng) -> Box<dyn SessionState> {
        CoreDrive::new(StdGaCore::new(*self, problem)).boxed()
    }
}

/// The incremental stdGA stepper: a lazily emitted random initial
/// population, then lazily bred generations from a parent pool frozen at
/// each generation boundary (same slicing discipline as MAGMA's core).
struct StdGaCore {
    ga: StdGa,
    num_accels: usize,
    pop_size: usize,
    elite_count: usize,
    init_emitted: usize,
    in_generations: bool,
    evaluated: Vec<(Mapping, f64)>,
    carry: Vec<(Mapping, f64)>,
    parents: Vec<Mapping>,
    children_target: usize,
    children_bred: usize,
}

impl StdGaCore {
    fn new(ga: StdGa, problem: &dyn MappingProblem) -> Self {
        // Nominal (budget-independent) population size; the one-shot budget
        // clamp only bound runs that ended inside the initial population,
        // which lazy emission reproduces.
        let pop_size = ga.config.population_size.max(4);
        let elite_count =
            ((pop_size as f64 * ga.config.elite_ratio).round() as usize).clamp(1, pop_size - 1);
        StdGaCore {
            ga,
            num_accels: problem.num_accels(),
            pop_size,
            elite_count,
            init_emitted: 0,
            in_generations: false,
            evaluated: Vec::new(),
            carry: Vec::new(),
            parents: Vec::new(),
            children_target: 0,
            children_bred: 0,
        }
    }

    fn begin_generation(&mut self) {
        let mut scored = std::mem::take(&mut self.carry);
        scored.append(&mut self.evaluated);
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let half = (scored.len() / 2).max(2).min(scored.len());
        self.parents = scored[..half].iter().map(|(mapping, _)| mapping.clone()).collect();
        scored.truncate(self.elite_count.min(scored.len()));
        self.carry = scored;
        self.children_target = self.pop_size.saturating_sub(self.carry.len());
        self.children_bred = 0;
    }
}

impl SessionCore for StdGaCore {
    fn next_wave(
        &mut self,
        want: usize,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping> {
        let n = problem.num_jobs();
        if !self.in_generations {
            if self.init_emitted < self.pop_size {
                let count = want.min(self.pop_size - self.init_emitted);
                let wave: Vec<Mapping> =
                    (0..count).map(|_| Mapping::random(rng, n, self.num_accels)).collect();
                self.init_emitted += count;
                return wave;
            }
            self.in_generations = true;
            self.begin_generation();
        } else if self.children_bred == self.children_target {
            self.begin_generation();
        }
        let count = want.min(self.children_target - self.children_bred);
        let wave: Vec<Mapping> = (0..count)
            .map(|_| {
                let dad = self.parents.choose(rng).unwrap();
                let mom = self.parents.choose(rng).unwrap();
                let mut child = dad.clone();
                if rng.gen::<f64>() < self.ga.config.crossover_rate {
                    StdGa::crossover(&mut child, mom, rng);
                }
                self.ga.mutate(&mut child, self.num_accels, rng);
                child
            })
            .collect();
        self.children_bred += count;
        wave
    }

    fn absorb(&mut self, wave: Vec<Mapping>, fits: &[f64], _problem: &dyn MappingProblem) {
        self.evaluated.extend(wave.into_iter().zip(fits.iter().copied()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::{toy_optimum, ToyProblem};
    use rand::SeedableRng;

    #[test]
    fn improves_over_time() {
        let p = ToyProblem { jobs: 20, accels: 4 };
        let o = StdGa::new().search(&p, 1_500, &mut StdRng::seed_from_u64(0));
        assert!(o.best_fitness > 0.6 * toy_optimum(20));
        let curve = o.history.best_curve();
        assert!(curve.last().unwrap() > &curve[0]);
    }

    #[test]
    fn respects_budget() {
        let p = ToyProblem { jobs: 10, accels: 2 };
        let o = StdGa::new().search(&p, 99, &mut StdRng::seed_from_u64(1));
        assert_eq!(o.history.num_samples(), 99);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = ToyProblem { jobs: 10, accels: 2 };
        let a = StdGa::new().search(&p, 200, &mut StdRng::seed_from_u64(5));
        let b = StdGa::new().search(&p, 200, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.best_fitness, b.best_fitness);
    }
}
