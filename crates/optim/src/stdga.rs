//! Standard genetic algorithm (the "stdGA" baseline of Table IV).
//!
//! Unlike MAGMA, stdGA treats the whole individual as one flat genome: a
//! single-pivot crossover cuts across the concatenated
//! (selection ‖ priority) genome, and mutation re-draws genes uniformly. The
//! paper uses mutation rate 0.1 and crossover rate 0.1.

use crate::optimizer::{Optimizer, SearchOutcome};
use crate::parallel::BatchEvaluator;
use magma_m3e::{Mapping, MappingProblem, SearchHistory};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Standard GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StdGaConfig {
    /// Population size.
    pub population_size: usize,
    /// Per-gene mutation probability (paper: 0.1).
    pub mutation_rate: f64,
    /// Probability of applying the flat single-pivot crossover (paper: 0.1).
    pub crossover_rate: f64,
    /// Fraction of the population carried over as elites.
    pub elite_ratio: f64,
}

impl Default for StdGaConfig {
    fn default() -> Self {
        StdGaConfig {
            population_size: 50,
            mutation_rate: 0.1,
            crossover_rate: 0.1,
            elite_ratio: 0.2,
        }
    }
}

/// The standard genetic algorithm baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdGa {
    config: StdGaConfig,
}

impl StdGa {
    /// Creates a stdGA with the paper's hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stdGA with explicit hyper-parameters.
    pub fn with_config(config: StdGaConfig) -> Self {
        StdGa { config }
    }

    /// Flat single-pivot crossover over the concatenated genome.
    fn crossover(child: &mut Mapping, mom: &Mapping, rng: &mut StdRng) {
        let n = child.num_jobs();
        let pivot = rng.gen_range(0..2 * n);
        for i in 0..2 * n {
            if i >= pivot {
                if i < n {
                    child.accel_sel_mut()[i] = mom.accel_sel()[i];
                } else {
                    child.priority_mut()[i - n] = mom.priority()[i - n];
                }
            }
        }
    }

    fn mutate(&self, child: &mut Mapping, num_accels: usize, rng: &mut StdRng) {
        let n = child.num_jobs();
        for i in 0..n {
            if rng.gen::<f64>() < self.config.mutation_rate {
                child.accel_sel_mut()[i] = rng.gen_range(0..num_accels);
            }
            if rng.gen::<f64>() < self.config.mutation_rate {
                child.priority_mut()[i] = rng.gen_range(0.0..1.0);
            }
        }
    }
}

impl Optimizer for StdGa {
    fn name(&self) -> &str {
        "stdGA"
    }

    fn search(
        &self,
        problem: &dyn MappingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> SearchOutcome {
        assert!(budget > 0, "sampling budget must be non-zero");
        let n = problem.num_jobs();
        let m = problem.num_accels();
        let pop_size = self.config.population_size.max(4).min(budget.max(2));
        let elite_count =
            ((pop_size as f64 * self.config.elite_ratio).round() as usize).clamp(1, pop_size - 1);

        let mut history = SearchHistory::new();
        let mut remaining = budget;

        // Initial population: generate fully (serial RNG), evaluate as one
        // batch, record in generation order.
        let mut population: Vec<Mapping> =
            (0..pop_size.min(remaining)).map(|_| Mapping::random(rng, n, m)).collect();
        let fits = problem.evaluate_batch(&population);
        remaining -= population.len();
        let mut scored: Vec<(Mapping, f64)> = Vec::with_capacity(pop_size);
        for (ind, f) in population.drain(..).zip(fits) {
            history.record(&ind, f);
            scored.push((ind, f));
        }

        while remaining > 0 && scored.len() >= 2 {
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let elites: Vec<(Mapping, f64)> = scored[..elite_count.min(scored.len())].to_vec();
            let pool: Vec<&Mapping> = scored[..(scored.len() / 2).max(2).min(scored.len())]
                .iter()
                .map(|(x, _)| x)
                .collect();
            let num_children = pop_size.saturating_sub(elites.len()).min(remaining);
            let children: Vec<Mapping> = (0..num_children)
                .map(|_| {
                    let dad = pool.choose(rng).unwrap();
                    let mom = pool.choose(rng).unwrap();
                    let mut child = (*dad).clone();
                    if rng.gen::<f64>() < self.config.crossover_rate {
                        Self::crossover(&mut child, mom, rng);
                    }
                    self.mutate(&mut child, m, rng);
                    child
                })
                .collect();
            let fits = problem.evaluate_batch(&children);
            remaining -= children.len();
            let mut next = elites;
            for (child, f) in children.into_iter().zip(fits) {
                history.record(&child, f);
                next.push((child, f));
            }
            scored = next;
        }

        SearchOutcome::from_history(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::{toy_optimum, ToyProblem};
    use rand::SeedableRng;

    #[test]
    fn improves_over_time() {
        let p = ToyProblem { jobs: 20, accels: 4 };
        let o = StdGa::new().search(&p, 1_500, &mut StdRng::seed_from_u64(0));
        assert!(o.best_fitness > 0.6 * toy_optimum(20));
        let curve = o.history.best_curve();
        assert!(curve.last().unwrap() > &curve[0]);
    }

    #[test]
    fn respects_budget() {
        let p = ToyProblem { jobs: 10, accels: 2 };
        let o = StdGa::new().search(&p, 99, &mut StdRng::seed_from_u64(1));
        assert_eq!(o.history.num_samples(), 99);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = ToyProblem { jobs: 10, accels: 2 };
        let a = StdGa::new().search(&p, 200, &mut StdRng::seed_from_u64(5));
        let b = StdGa::new().search(&p, 200, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.best_fitness, b.best_fitness);
    }
}
