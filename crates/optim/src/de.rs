//! Differential Evolution (DE/rand/1/bin), the "DE" baseline of Table IV.
//!
//! The paper configures DE with a local and global differential weight of
//! 0.8; this implementation uses the classic rand/1/bin scheme with
//! `F = 0.8` and crossover rate `CR = 0.8` over the continuous vector view of
//! the encoding. The update is generation-synchronous (all trials of a
//! generation are built from, and selected against, the previous
//! generation), which is what lets a generation evaluate as one parallel
//! batch.

use crate::optimizer::{Optimizer, SessionState};
use crate::session::{CoreDrive, SessionCore};
use crate::vector::{clamp_unit, VectorProblem};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;
use rand::Rng;

/// Differential-evolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeConfig {
    /// Population size.
    pub population_size: usize,
    /// Differential weight F (paper: 0.8).
    pub differential_weight: f64,
    /// Crossover probability CR (paper: 0.8).
    pub crossover_rate: f64,
}

impl Default for DeConfig {
    fn default() -> Self {
        DeConfig { population_size: 40, differential_weight: 0.8, crossover_rate: 0.8 }
    }
}

/// The DE/rand/1/bin optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DifferentialEvolution {
    config: DeConfig,
}

impl DifferentialEvolution {
    /// Creates DE with the paper's hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates DE with explicit hyper-parameters.
    pub fn with_config(config: DeConfig) -> Self {
        DifferentialEvolution { config }
    }
}

impl Optimizer for DifferentialEvolution {
    fn name(&self) -> &str {
        "DE"
    }

    fn open(&self, problem: &dyn MappingProblem, _rng: &mut StdRng) -> Box<dyn SessionState> {
        CoreDrive::new(DeCore::new(*self, problem)).boxed()
    }
}

/// The incremental DE/rand/1/bin stepper. Trials stay generation-synchronous
/// — every trial of a generation is built from the population frozen at the
/// generation boundary — but are *bred lazily*, one per demanded sample, and
/// selection is applied only once the whole generation has been evaluated.
/// A session stopped mid-generation has therefore drawn exactly the one-shot
/// search's RNG stream.
struct DeCore {
    de: DifferentialEvolution,
    np: usize,
    /// The frozen population and fitnesses trials are built against.
    pop: Vec<Vec<f64>>,
    fit: Vec<f64>,
    /// Candidates emitted for the generation in flight (init individuals or
    /// trial vectors), in emission order.
    gen_xs: Vec<Vec<f64>>,
    /// Fitnesses absorbed for the generation in flight.
    gen_fits: Vec<f64>,
    in_generations: bool,
}

impl DeCore {
    fn new(de: DifferentialEvolution, _problem: &dyn MappingProblem) -> Self {
        // Nominal (budget-independent) population size; the one-shot budget
        // clamp only bound runs that ended inside the initial population.
        let np = de.config.population_size.max(4);
        DeCore {
            de,
            np,
            pop: Vec::new(),
            fit: Vec::new(),
            gen_xs: Vec::new(),
            gen_fits: Vec::new(),
            in_generations: false,
        }
    }

    /// Breeds trial `i` of the current generation (rand/1/bin) against the
    /// frozen population — the exact per-trial RNG draws of the one-shot
    /// loop.
    fn breed_trial(&self, i: usize, dims: usize, rng: &mut StdRng) -> Vec<f64> {
        let mut pick = |taken: &[usize]| loop {
            let j = rng.gen_range(0..self.pop.len());
            if j != i && !taken.contains(&j) {
                return j;
            }
        };
        let a = pick(&[]);
        let b = pick(&[a]);
        let c = pick(&[a, b]);
        let jrand = rng.gen_range(0..dims);
        let mut trial = self.pop[i].clone();
        for (d, gene) in trial.iter_mut().enumerate() {
            if rng.gen::<f64>() < self.de.config.crossover_rate || d == jrand {
                *gene = self.pop[a][d]
                    + self.de.config.differential_weight * (self.pop[b][d] - self.pop[c][d]);
            }
        }
        clamp_unit(&mut trial);
        trial
    }

    /// Size of the generation in flight: the initial population and every
    /// trial generation are all `np` wide.
    fn gen_target(&self) -> usize {
        self.np
    }

    /// Folds the completed generation back: the initial population becomes
    /// the frozen population; a trial generation is selected index-by-index.
    fn close_generation(&mut self) {
        let xs = std::mem::take(&mut self.gen_xs);
        let fits = std::mem::take(&mut self.gen_fits);
        if !self.in_generations {
            self.pop = xs;
            self.fit = fits;
            self.in_generations = true;
        } else {
            for (i, (trial, f)) in xs.into_iter().zip(fits).enumerate() {
                if f > self.fit[i] {
                    self.pop[i] = trial;
                    self.fit[i] = f;
                }
            }
        }
    }
}

impl SessionCore for DeCore {
    fn next_wave(
        &mut self,
        want: usize,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping> {
        let vp = VectorProblem::new(problem);
        let dims = vp.dims();
        if self.gen_xs.len() == self.gen_target() {
            self.close_generation();
            // Mirrors the one-shot `pop.len() >= 4` guard: rand/1/bin needs
            // four distinct individuals (never hit at the nominal np ≥ 4).
            if self.in_generations && self.pop.len() < 4 {
                return Vec::new();
            }
        }
        let count = want.min(self.gen_target() - self.gen_xs.len());
        let mut wave = Vec::with_capacity(count);
        for _ in 0..count {
            let i = self.gen_xs.len();
            let x = if self.in_generations {
                self.breed_trial(i, dims, rng)
            } else {
                vp.random_point(rng)
            };
            wave.push(vp.decode(&x));
            self.gen_xs.push(x);
        }
        wave
    }

    fn absorb(&mut self, _wave: Vec<Mapping>, fits: &[f64], _problem: &dyn MappingProblem) {
        self.gen_fits.extend_from_slice(fits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use crate::random::RandomSearch;
    use rand::SeedableRng;

    #[test]
    fn improves_over_random_init() {
        let p = ToyProblem { jobs: 16, accels: 4 };
        let o = DifferentialEvolution::new().search(&p, 1_200, &mut StdRng::seed_from_u64(0));
        let first = o.history.best_curve()[40.min(o.history.num_samples() - 1)];
        assert!(o.best_fitness > first);
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = DifferentialEvolution::new().search(&p, 111, &mut StdRng::seed_from_u64(4));
        let b = DifferentialEvolution::new().search(&p, 111, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.history.num_samples(), 111);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn not_worse_than_pure_random_on_toy() {
        let p = ToyProblem { jobs: 20, accels: 4 };
        let de = DifferentialEvolution::new().search(&p, 1_000, &mut StdRng::seed_from_u64(2));
        let rnd = RandomSearch::new().search(&p, 1_000, &mut StdRng::seed_from_u64(2));
        assert!(de.best_fitness >= rnd.best_fitness * 0.9);
    }
}
