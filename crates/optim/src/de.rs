//! Differential Evolution (DE/rand/1/bin), the "DE" baseline of Table IV.
//!
//! The paper configures DE with a local and global differential weight of
//! 0.8; this implementation uses the classic rand/1/bin scheme with
//! `F = 0.8` and crossover rate `CR = 0.8` over the continuous vector view of
//! the encoding. The update is generation-synchronous (all trials of a
//! generation are built from, and selected against, the previous
//! generation), which is what lets a generation evaluate as one parallel
//! batch.

use crate::optimizer::{Optimizer, SearchOutcome};
use crate::vector::{clamp_unit, VectorProblem};
use magma_m3e::{MappingProblem, SearchHistory};
use rand::rngs::StdRng;
use rand::Rng;

/// Differential-evolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeConfig {
    /// Population size.
    pub population_size: usize,
    /// Differential weight F (paper: 0.8).
    pub differential_weight: f64,
    /// Crossover probability CR (paper: 0.8).
    pub crossover_rate: f64,
}

impl Default for DeConfig {
    fn default() -> Self {
        DeConfig { population_size: 40, differential_weight: 0.8, crossover_rate: 0.8 }
    }
}

/// The DE/rand/1/bin optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DifferentialEvolution {
    config: DeConfig,
}

impl DifferentialEvolution {
    /// Creates DE with the paper's hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates DE with explicit hyper-parameters.
    pub fn with_config(config: DeConfig) -> Self {
        DifferentialEvolution { config }
    }
}

impl Optimizer for DifferentialEvolution {
    fn name(&self) -> &str {
        "DE"
    }

    fn search(
        &self,
        problem: &dyn MappingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> SearchOutcome {
        assert!(budget > 0, "sampling budget must be non-zero");
        let vp = VectorProblem::new(problem);
        let dims = vp.dims();
        let np = self.config.population_size.max(4).min(budget.max(4));
        let mut history = SearchHistory::new();
        let mut remaining = budget;

        // Initial population, evaluated as one batch.
        let pop_init: Vec<Vec<f64>> =
            (0..np.min(remaining)).map(|_| vp.random_point(rng)).collect();
        let fit_init = vp.evaluate_generation(&pop_init, &mut history);
        remaining -= pop_init.len();
        let mut pop = pop_init;
        let mut fit = fit_init;

        // Generation-synchronous rand/1/bin: every trial of a generation is
        // built from the *previous* generation's population, so the whole
        // generation can be evaluated as one parallel batch and selection
        // applied afterwards in index order.
        while remaining > 0 && pop.len() >= 4 {
            let this_gen = pop.len().min(remaining);
            let mut trials: Vec<Vec<f64>> = Vec::with_capacity(this_gen);
            for (i, target) in pop.iter().enumerate().take(this_gen) {
                // Pick three mutually distinct individuals, all different
                // from i (rand/1/bin requires r1 ≠ r2 ≠ r3 ≠ i; the loop
                // guard keeps pop.len() ≥ 4 so this always terminates).
                let mut pick = |taken: &[usize]| loop {
                    let j = rng.gen_range(0..pop.len());
                    if j != i && !taken.contains(&j) {
                        return j;
                    }
                };
                let a = pick(&[]);
                let b = pick(&[a]);
                let c = pick(&[a, b]);
                let jrand = rng.gen_range(0..dims);
                let mut trial = target.clone();
                for d in 0..dims {
                    if rng.gen::<f64>() < self.config.crossover_rate || d == jrand {
                        trial[d] =
                            pop[a][d] + self.config.differential_weight * (pop[b][d] - pop[c][d]);
                    }
                }
                clamp_unit(&mut trial);
                trials.push(trial);
            }
            let trial_fits = vp.evaluate_generation(&trials, &mut history);
            remaining -= this_gen;
            for (i, (trial, f)) in trials.into_iter().zip(trial_fits).enumerate() {
                if f > fit[i] {
                    pop[i] = trial;
                    fit[i] = f;
                }
            }
        }

        SearchOutcome::from_history(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use crate::random::RandomSearch;
    use rand::SeedableRng;

    #[test]
    fn improves_over_random_init() {
        let p = ToyProblem { jobs: 16, accels: 4 };
        let o = DifferentialEvolution::new().search(&p, 1_200, &mut StdRng::seed_from_u64(0));
        let first = o.history.best_curve()[40.min(o.history.num_samples() - 1)];
        assert!(o.best_fitness > first);
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = DifferentialEvolution::new().search(&p, 111, &mut StdRng::seed_from_u64(4));
        let b = DifferentialEvolution::new().search(&p, 111, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.history.num_samples(), 111);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn not_worse_than_pure_random_on_toy() {
        let p = ToyProblem { jobs: 20, accels: 4 };
        let de = DifferentialEvolution::new().search(&p, 1_000, &mut StdRng::seed_from_u64(2));
        let rnd = RandomSearch::new().search(&p, 1_000, &mut StdRng::seed_from_u64(2));
        assert!(de.best_fitness >= rnd.best_fitness * 0.9);
    }
}
