//! Differential Evolution (DE/rand/1/bin), the "DE" baseline of Table IV.
//!
//! The paper configures DE with a local and global differential weight of
//! 0.8; this implementation uses the classic rand/1/bin scheme with
//! `F = 0.8` and crossover rate `CR = 0.8` over the continuous vector view of
//! the encoding.

use crate::optimizer::{Optimizer, SearchOutcome};
use crate::vector::{clamp_unit, VectorProblem};
use magma_m3e::{MappingProblem, SearchHistory};
use rand::rngs::StdRng;
use rand::Rng;

/// Differential-evolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeConfig {
    /// Population size.
    pub population_size: usize,
    /// Differential weight F (paper: 0.8).
    pub differential_weight: f64,
    /// Crossover probability CR (paper: 0.8).
    pub crossover_rate: f64,
}

impl Default for DeConfig {
    fn default() -> Self {
        DeConfig { population_size: 40, differential_weight: 0.8, crossover_rate: 0.8 }
    }
}

/// The DE/rand/1/bin optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DifferentialEvolution {
    config: DeConfig,
}

impl DifferentialEvolution {
    /// Creates DE with the paper's hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates DE with explicit hyper-parameters.
    pub fn with_config(config: DeConfig) -> Self {
        DifferentialEvolution { config }
    }
}

impl Optimizer for DifferentialEvolution {
    fn name(&self) -> &str {
        "DE"
    }

    fn search(
        &self,
        problem: &dyn MappingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> SearchOutcome {
        assert!(budget > 0, "sampling budget must be non-zero");
        let vp = VectorProblem::new(problem);
        let dims = vp.dims();
        let np = self.config.population_size.max(4).min(budget.max(4));
        let mut history = SearchHistory::new();
        let mut remaining = budget;

        // Initial population.
        let mut pop: Vec<Vec<f64>> = Vec::with_capacity(np);
        let mut fit: Vec<f64> = Vec::with_capacity(np);
        for _ in 0..np {
            if remaining == 0 {
                break;
            }
            let x = vp.random_point(rng);
            let f = vp.evaluate(&x, &mut history);
            remaining -= 1;
            pop.push(x);
            fit.push(f);
        }

        while remaining > 0 && pop.len() >= 4 {
            for i in 0..pop.len() {
                if remaining == 0 {
                    break;
                }
                // Pick three distinct individuals different from i.
                let mut pick = || loop {
                    let j = rng.gen_range(0..pop.len());
                    if j != i {
                        return j;
                    }
                };
                let (a, b, c) = (pick(), pick(), pick());
                let jrand = rng.gen_range(0..dims);
                let mut trial = pop[i].clone();
                for d in 0..dims {
                    if rng.gen::<f64>() < self.config.crossover_rate || d == jrand {
                        trial[d] =
                            pop[a][d] + self.config.differential_weight * (pop[b][d] - pop[c][d]);
                    }
                }
                clamp_unit(&mut trial);
                let f = vp.evaluate(&trial, &mut history);
                remaining -= 1;
                if f > fit[i] {
                    pop[i] = trial;
                    fit[i] = f;
                }
            }
        }

        SearchOutcome::from_history(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use crate::random::RandomSearch;
    use rand::SeedableRng;

    #[test]
    fn improves_over_random_init() {
        let p = ToyProblem { jobs: 16, accels: 4 };
        let o = DifferentialEvolution::new().search(&p, 1_200, &mut StdRng::seed_from_u64(0));
        let first = o.history.best_curve()[40.min(o.history.num_samples() - 1)];
        assert!(o.best_fitness > first);
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = DifferentialEvolution::new().search(&p, 111, &mut StdRng::seed_from_u64(4));
        let b = DifferentialEvolution::new().search(&p, 111, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.history.num_samples(), 111);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn not_worse_than_pure_random_on_toy() {
        let p = ToyProblem { jobs: 20, accels: 4 };
        let de = DifferentialEvolution::new().search(&p, 1_000, &mut StdRng::seed_from_u64(2));
        let rnd = RandomSearch::new().search(&p, 1_000, &mut StdRng::seed_from_u64(2));
        assert!(de.best_fitness >= rnd.best_fitness * 0.9);
    }
}
