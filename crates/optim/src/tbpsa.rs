//! Test-Based Population-Size Adaptation (TBPSA) — a noise-robust evolution
//! strategy from the nevergrad family, used as a baseline in Table IV.
//!
//! TBPSA is a (μ/μ, λ) evolution strategy that *grows* its population when
//! progress stalls (the "test-based" adaptation): averaging over a larger
//! population filters noise and flat regions at the cost of slower iterations.
//! The paper starts it at a population of 50 and lets it evolve.

use crate::optimizer::{Optimizer, SessionState};
use crate::session::{CoreDrive, SessionCore};
use crate::vector::{clamp_unit, VectorProblem};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// TBPSA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TbpsaConfig {
    /// Initial population size (paper: 50).
    pub initial_population: usize,
    /// Maximum population size the adaptation may grow to.
    pub max_population: usize,
    /// Growth factor applied when a generation fails to improve the best.
    pub growth_factor: f64,
    /// Initial per-dimension step size.
    pub initial_sigma: f64,
    /// Multiplicative step-size decay per non-improving generation.
    pub sigma_decay: f64,
}

impl Default for TbpsaConfig {
    fn default() -> Self {
        TbpsaConfig {
            initial_population: 50,
            max_population: 400,
            growth_factor: 1.3,
            initial_sigma: 0.3,
            sigma_decay: 0.95,
        }
    }
}

/// The TBPSA optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tbpsa {
    config: TbpsaConfig,
}

impl Tbpsa {
    /// Creates TBPSA with the paper's initial population of 50.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates TBPSA with explicit hyper-parameters.
    pub fn with_config(config: TbpsaConfig) -> Self {
        Tbpsa { config }
    }
}

impl Optimizer for Tbpsa {
    fn name(&self) -> &str {
        "TBPSA"
    }

    fn open(&self, problem: &dyn MappingProblem, rng: &mut StdRng) -> Box<dyn SessionState> {
        CoreDrive::new(TbpsaCore::new(*self, problem, rng)).boxed()
    }
}

/// The incremental TBPSA stepper: individuals are sampled lazily from the
/// frozen `(mean, sigma)` distribution; the mean update and the test-based
/// population growth run only when the whole (current-λ) generation has
/// been evaluated, so slicing never changes which generation a sample
/// belongs to.
struct TbpsaCore {
    tbpsa: Tbpsa,
    lambda: usize,
    sigma: f64,
    normal: Normal,
    mean: Vec<f64>,
    best_so_far: f64,
    gen_xs: Vec<Vec<f64>>,
    gen_fits: Vec<f64>,
}

impl TbpsaCore {
    fn new(tbpsa: Tbpsa, problem: &dyn MappingProblem, rng: &mut StdRng) -> Self {
        let dims = VectorProblem::new(problem).dims();
        let lambda = tbpsa.config.initial_population.max(4);
        let sigma = tbpsa.config.initial_sigma;
        let mean: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.3..0.7)).collect();
        TbpsaCore {
            tbpsa,
            lambda,
            sigma,
            normal: Normal::new(0.0, 1.0).expect("unit normal"),
            mean,
            best_so_far: f64::NEG_INFINITY,
            gen_xs: Vec::new(),
            gen_fits: Vec::new(),
        }
    }

    /// The per-generation mean update and test-based adaptation (the
    /// one-shot per-generation block, verbatim).
    fn update_distribution(&mut self) {
        let dims = self.mean.len();
        let xs = std::mem::take(&mut self.gen_xs);
        let fits = std::mem::take(&mut self.gen_fits);
        let mut samples: Vec<(Vec<f64>, f64)> = xs.into_iter().zip(fits).collect();
        samples.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mu = (samples.len() / 2).max(1);
        let elites = &samples[..mu];
        for d in 0..dims {
            self.mean[d] = elites.iter().map(|(x, _)| x[d]).sum::<f64>() / mu as f64;
        }

        let gen_best = samples[0].1;
        if gen_best > self.best_so_far {
            self.best_so_far = gen_best;
        } else {
            // Test failed: widen the population to average out noise and
            // shrink the step size.
            self.lambda = ((self.lambda as f64 * self.tbpsa.config.growth_factor) as usize)
                .min(self.tbpsa.config.max_population);
            self.sigma *= self.tbpsa.config.sigma_decay;
        }
    }
}

impl SessionCore for TbpsaCore {
    fn next_wave(
        &mut self,
        want: usize,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping> {
        let vp = VectorProblem::new(problem);
        let dims = self.mean.len();
        if self.gen_xs.len() == self.lambda {
            self.update_distribution();
        }
        let count = want.min(self.lambda - self.gen_xs.len());
        let mut wave = Vec::with_capacity(count);
        for _ in 0..count {
            let mut x: Vec<f64> =
                (0..dims).map(|d| self.mean[d] + self.sigma * self.normal.sample(rng)).collect();
            clamp_unit(&mut x);
            wave.push(vp.decode(&x));
            self.gen_xs.push(x);
        }
        wave
    }

    fn absorb(&mut self, _wave: Vec<Mapping>, fits: &[f64], _problem: &dyn MappingProblem) {
        self.gen_fits.extend_from_slice(fits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn improves_over_initial_generation() {
        let p = ToyProblem { jobs: 16, accels: 4 };
        let o = Tbpsa::new().search(&p, 1_500, &mut StdRng::seed_from_u64(0));
        let init = o.history.best_curve()[49];
        assert!(o.best_fitness >= init);
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = Tbpsa::new().search(&p, 333, &mut StdRng::seed_from_u64(5));
        let b = Tbpsa::new().search(&p, 333, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.history.num_samples(), 333);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn small_budget_does_not_panic() {
        let p = ToyProblem { jobs: 5, accels: 2 };
        let o = Tbpsa::new().search(&p, 7, &mut StdRng::seed_from_u64(1));
        assert_eq!(o.history.num_samples(), 7);
    }
}
