//! Reinforcement-learning mappers: A2C and PPO2 (Table IV).
//!
//! The paper uses stable-baselines-style agents with policy and critic
//! networks of three 128-unit MLP layers. This module reimplements that
//! stack from scratch:
//!
//! * [`nn`] — a tiny dense neural-network library with manual
//!   backpropagation and Adam / RMSProp optimizers,
//! * [`mod@env`] — the mapping-construction episode: the agent assigns jobs to
//!   cores (and priority buckets) one at a time and receives the achieved
//!   group throughput as the terminal reward,
//! * [`a2c`] — Advantage Actor-Critic (RMSProp, lr 7e-4, γ = 0.99),
//! * [`ppo`] — Proximal Policy Optimization with clipping (Adam, lr 2.5e-4,
//!   clip 0.2, γ = 0.99).
//!
//! Every environment step consumes exactly one fitness evaluation per
//! completed episode, so the RL agents respect the same sampling budget as
//! the other optimizers. PPO2 freezes its policy while collecting a batch
//! of rollouts, so the episodes' terminal evaluations go through the
//! parallel batch oracle ([`crate::parallel`]) as one batch; A2C updates
//! after every episode and therefore evaluates one-element batches.

pub mod a2c;
pub mod env;
pub mod nn;
pub mod ppo;

pub use a2c::A2c;
pub use ppo::Ppo2;

#[cfg(test)]
mod tests {
    use crate::optimizer::test_support::ToyProblem;
    use crate::optimizer::Optimizer;
    use crate::random::RandomSearch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn a2c_and_ppo_run_within_budget_and_learn_something() {
        let p = ToyProblem { jobs: 12, accels: 3 };
        for opt in [&super::A2c::default() as &dyn Optimizer, &super::Ppo2::default()] {
            let o = opt.search(&p, 400, &mut StdRng::seed_from_u64(0));
            assert_eq!(o.history.num_samples(), 400, "{}", opt.name());
            // Sanity: not worse than a handful of random samples.
            let rnd = RandomSearch::new().search(&p, 20, &mut StdRng::seed_from_u64(0));
            assert!(o.best_fitness >= rnd.best_fitness * 0.8, "{}", opt.name());
        }
    }
}
