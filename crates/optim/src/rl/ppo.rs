//! Proximal Policy Optimization (PPO2), following the paper's configuration:
//! 3 × 128 MLP policy and critic, discount 0.99, clip range 0.2, learning
//! rate 2.5e-4, Adam.

use crate::optimizer::{Optimizer, SearchOutcome};
use crate::parallel::BatchEvaluator;
use crate::rl::env::{
    observation, observation_dim, EpisodeActions, RewardNormalizer, PRIORITY_BUCKETS,
};
use crate::rl::nn::{sample_categorical, softmax, GradOptimizer, Mlp};
use magma_m3e::{Mapping, MappingProblem, SearchHistory};
use rand::rngs::StdRng;

/// PPO2 hyper-parameters (Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ppo2Config {
    /// Hidden layer width (paper: 128, three layers).
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Clipping range ε.
    pub clip_range: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Episodes collected per policy update.
    pub episodes_per_batch: usize,
    /// Optimization epochs per batch.
    pub epochs: usize,
}

impl Default for Ppo2Config {
    fn default() -> Self {
        Ppo2Config {
            hidden: 128,
            gamma: 0.99,
            clip_range: 0.2,
            learning_rate: 2.5e-4,
            episodes_per_batch: 8,
            epochs: 4,
        }
    }
}

/// One sampled episode step: (observation, accel action, bucket action,
/// joint log-probability).
type Step = (Vec<f64>, usize, usize, f64);

/// One transition stored in the rollout buffer.
struct Transition {
    obs: Vec<f64>,
    accel: usize,
    bucket: usize,
    old_logp: f64,
    ret: f64,
}

/// The PPO2 mapper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ppo2 {
    config: Ppo2Config,
}

impl Ppo2 {
    /// Creates PPO2 with the paper's hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates PPO2 with explicit hyper-parameters.
    pub fn with_config(config: Ppo2Config) -> Self {
        Ppo2 { config }
    }
}

impl Optimizer for Ppo2 {
    fn name(&self) -> &str {
        "RL PPO2"
    }

    fn search(
        &self,
        problem: &dyn MappingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> SearchOutcome {
        assert!(budget > 0, "sampling budget must be non-zero");
        let n = problem.num_jobs();
        let m = problem.num_accels();
        let obs_dim = observation_dim(problem);
        let h = self.config.hidden;
        let act_dim = m + PRIORITY_BUCKETS;
        let mut policy = Mlp::new(&[obs_dim, h, h, h, act_dim], rng);
        let mut critic = Mlp::new(&[obs_dim, h, h, h, 1], rng);
        let opt = GradOptimizer::Adam { lr: self.config.learning_rate, beta1: 0.9, beta2: 0.999 };

        let mut history = SearchHistory::new();
        let mut normalizer = RewardNormalizer::new();
        let mut episodes_done = 0usize;

        while episodes_done < budget {
            // ----- collect a batch of rollouts -----
            // The policy is frozen while a batch is collected, so the
            // episodes are independent given the (serially sampled) actions:
            // roll them all out first, then evaluate their mappings as one
            // parallel batch, then fold rewards in episode order so the
            // normalizer state is identical to the serial path.
            let batch_episodes = self.config.episodes_per_batch.min(budget - episodes_done);
            let mut buffer: Vec<Transition> = Vec::with_capacity(batch_episodes * n);
            let mut episodes: Vec<Vec<Step>> = Vec::with_capacity(batch_episodes);
            let mut mappings: Vec<Mapping> = Vec::with_capacity(batch_episodes);
            for _ in 0..batch_episodes {
                let mut loads = vec![0.0f64; m];
                let mut steps: Vec<Step> = Vec::with_capacity(n);
                for step in 0..n {
                    let obs = observation(problem, step, &loads);
                    let logits = policy.forward(&obs);
                    let pa = softmax(&logits[..m]);
                    let pb = softmax(&logits[m..]);
                    let a = sample_categorical(&pa, rng);
                    let b = sample_categorical(&pb, rng);
                    let logp = pa[a].max(1e-12).ln() + pb[b].max(1e-12).ln();
                    loads[a] += problem.profile(step, a).map(|p| p.no_stall_seconds).unwrap_or(1.0);
                    steps.push((obs, a, b, logp));
                }
                mappings.push(
                    EpisodeActions {
                        accels: steps.iter().map(|s| s.1).collect(),
                        buckets: steps.iter().map(|s| s.2).collect(),
                    }
                    .into_mapping(m),
                );
                episodes.push(steps);
            }
            let fitnesses = problem.evaluate_batch(&mappings);
            for ((steps, mapping), fitness) in episodes.into_iter().zip(&mappings).zip(fitnesses) {
                history.record(mapping, fitness);
                episodes_done += 1;
                let norm_reward = normalizer.normalize(fitness);
                for (step, (obs, a, b, logp)) in steps.into_iter().enumerate() {
                    let ret = norm_reward * self.config.gamma.powi((n - 1 - step) as i32);
                    buffer.push(Transition { obs, accel: a, bucket: b, old_logp: logp, ret });
                }
            }

            // ----- clipped policy / value updates -----
            for _ in 0..self.config.epochs {
                for tr in &buffer {
                    let (v_out, v_cache) = critic.forward_cached(&tr.obs);
                    let advantage = tr.ret - v_out[0];
                    critic.backward(&v_cache, &[2.0 * (v_out[0] - tr.ret)]);

                    let (logits, p_cache) = policy.forward_cached(&tr.obs);
                    let pa = softmax(&logits[..m]);
                    let pb = softmax(&logits[m..]);
                    let new_logp = pa[tr.accel].max(1e-12).ln() + pb[tr.bucket].max(1e-12).ln();
                    let ratio = (new_logp - tr.old_logp).exp();
                    let eps = self.config.clip_range;
                    // The clipped-surrogate gradient is zero when the ratio is
                    // outside the trust region on the side the advantage
                    // pushes toward.
                    let active =
                        if advantage >= 0.0 { ratio <= 1.0 + eps } else { ratio >= 1.0 - eps };
                    if active {
                        let factor = ratio * advantage;
                        let mut grad = Vec::with_capacity(act_dim);
                        for (i, &p) in pa.iter().enumerate() {
                            let onehot = if i == tr.accel { 1.0 } else { 0.0 };
                            grad.push(factor * (p - onehot));
                        }
                        for (i, &p) in pb.iter().enumerate() {
                            let onehot = if i == tr.bucket { 1.0 } else { 0.0 };
                            grad.push(factor * (p - onehot));
                        }
                        policy.backward(&p_cache, &grad);
                    }
                }
                policy.step(opt, buffer.len());
                critic.step(opt, buffer.len());
            }
        }

        SearchOutcome::from_history(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = Ppo2::new().search(&p, 48, &mut StdRng::seed_from_u64(0));
        let b = Ppo2::new().search(&p, 48, &mut StdRng::seed_from_u64(0));
        assert_eq!(a.history.num_samples(), 48);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn partial_final_batch_is_handled() {
        let p = ToyProblem { jobs: 6, accels: 2 };
        // 13 is not a multiple of the default batch size (8).
        let o = Ppo2::new().search(&p, 13, &mut StdRng::seed_from_u64(1));
        assert_eq!(o.history.num_samples(), 13);
    }

    #[test]
    fn learning_does_not_collapse() {
        let p = ToyProblem { jobs: 10, accels: 2 };
        let o = Ppo2::new().search(&p, 400, &mut StdRng::seed_from_u64(2));
        let samples = o.history.samples();
        let early: f64 = samples[..80].iter().sum::<f64>() / 80.0;
        let late: f64 = samples[samples.len() - 80..].iter().sum::<f64>() / 80.0;
        assert!(late >= early * 0.95, "early {early:.2}, late {late:.2}");
    }
}
