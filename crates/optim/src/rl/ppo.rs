//! Proximal Policy Optimization (PPO2), following the paper's configuration:
//! 3 × 128 MLP policy and critic, discount 0.99, clip range 0.2, learning
//! rate 2.5e-4, Adam.

use crate::optimizer::{Optimizer, SessionState};
use crate::rl::env::{
    observation, observation_dim, EpisodeActions, RewardNormalizer, PRIORITY_BUCKETS,
};
use crate::rl::nn::{sample_categorical, softmax, GradOptimizer, Mlp};
use crate::session::{CoreDrive, SessionCore};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;

/// PPO2 hyper-parameters (Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ppo2Config {
    /// Hidden layer width (paper: 128, three layers).
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Clipping range ε.
    pub clip_range: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Episodes collected per policy update.
    pub episodes_per_batch: usize,
    /// Optimization epochs per batch.
    pub epochs: usize,
}

impl Default for Ppo2Config {
    fn default() -> Self {
        Ppo2Config {
            hidden: 128,
            gamma: 0.99,
            clip_range: 0.2,
            learning_rate: 2.5e-4,
            episodes_per_batch: 8,
            epochs: 4,
        }
    }
}

/// One sampled episode step: (observation, accel action, bucket action,
/// joint log-probability).
type Step = (Vec<f64>, usize, usize, f64);

/// One transition stored in the rollout buffer.
struct Transition {
    obs: Vec<f64>,
    accel: usize,
    bucket: usize,
    old_logp: f64,
    ret: f64,
}

/// The PPO2 mapper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ppo2 {
    config: Ppo2Config,
}

impl Ppo2 {
    /// Creates PPO2 with the paper's hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates PPO2 with explicit hyper-parameters.
    pub fn with_config(config: Ppo2Config) -> Self {
        Ppo2 { config }
    }
}

impl Optimizer for Ppo2 {
    fn name(&self) -> &str {
        "RL PPO2"
    }

    fn open(&self, problem: &dyn MappingProblem, rng: &mut StdRng) -> Box<dyn SessionState> {
        CoreDrive::new(Ppo2Core::new(*self, problem, rng)).boxed()
    }
}

/// The incremental PPO2 stepper. PPO2's natural granularity is coarser than
/// a single sample: the policy is frozen while a rollout batch (8 episodes)
/// is collected and only updated at the batch boundary. A wave therefore
/// rolls out up to the slice's worth of episodes *within the current frozen
/// batch*; the clipped update runs once the full batch has been absorbed.
/// Because rollouts are serially sampled and evaluation never touches the
/// RNG, slicing the collection changes neither the episode stream nor the
/// update points — the one-shot search, sliced.
struct Ppo2Core {
    ppo: Ppo2,
    policy: Mlp,
    critic: Mlp,
    opt: GradOptimizer,
    normalizer: RewardNormalizer,
    /// Transitions of the rollout batch being collected.
    buffer: Vec<Transition>,
    /// Episodes rolled out in the current batch (absorbed ones).
    episodes_in_batch: usize,
    /// Episodes rolled out by the current wave, awaiting fitnesses.
    inflight: Vec<Vec<Step>>,
}

impl Ppo2Core {
    fn new(ppo: Ppo2, problem: &dyn MappingProblem, rng: &mut StdRng) -> Self {
        let m = problem.num_accels();
        let obs_dim = observation_dim(problem);
        let h = ppo.config.hidden;
        let act_dim = m + PRIORITY_BUCKETS;
        Ppo2Core {
            ppo,
            policy: Mlp::new(&[obs_dim, h, h, h, act_dim], rng),
            critic: Mlp::new(&[obs_dim, h, h, h, 1], rng),
            opt: GradOptimizer::Adam { lr: ppo.config.learning_rate, beta1: 0.9, beta2: 0.999 },
            normalizer: RewardNormalizer::new(),
            buffer: Vec::new(),
            episodes_in_batch: 0,
            inflight: Vec::new(),
        }
    }

    /// Rolls out one episode under the frozen policy.
    fn rollout(&mut self, problem: &dyn MappingProblem, rng: &mut StdRng) -> (Vec<Step>, Mapping) {
        let n = problem.num_jobs();
        let m = problem.num_accels();
        let mut loads = vec![0.0f64; m];
        let mut steps: Vec<Step> = Vec::with_capacity(n);
        for step in 0..n {
            let obs = observation(problem, step, &loads);
            let logits = self.policy.forward(&obs);
            let pa = softmax(&logits[..m]);
            let pb = softmax(&logits[m..]);
            let a = sample_categorical(&pa, rng);
            let b = sample_categorical(&pb, rng);
            let logp = pa[a].max(1e-12).ln() + pb[b].max(1e-12).ln();
            loads[a] += problem.profile(step, a).map(|p| p.no_stall_seconds).unwrap_or(1.0);
            steps.push((obs, a, b, logp));
        }
        let mapping = EpisodeActions {
            accels: steps.iter().map(|s| s.1).collect(),
            buckets: steps.iter().map(|s| s.2).collect(),
        }
        .into_mapping(m);
        (steps, mapping)
    }

    /// The clipped policy / value update over the completed rollout batch
    /// (the one-shot per-batch block, verbatim).
    fn update(&mut self, m: usize) {
        let act_dim = m + PRIORITY_BUCKETS;
        for _ in 0..self.ppo.config.epochs {
            for tr in &self.buffer {
                let (v_out, v_cache) = self.critic.forward_cached(&tr.obs);
                let advantage = tr.ret - v_out[0];
                self.critic.backward(&v_cache, &[2.0 * (v_out[0] - tr.ret)]);

                let (logits, p_cache) = self.policy.forward_cached(&tr.obs);
                let pa = softmax(&logits[..m]);
                let pb = softmax(&logits[m..]);
                let new_logp = pa[tr.accel].max(1e-12).ln() + pb[tr.bucket].max(1e-12).ln();
                let ratio = (new_logp - tr.old_logp).exp();
                let eps = self.ppo.config.clip_range;
                // The clipped-surrogate gradient is zero when the ratio is
                // outside the trust region on the side the advantage
                // pushes toward.
                let active = if advantage >= 0.0 { ratio <= 1.0 + eps } else { ratio >= 1.0 - eps };
                if active {
                    let factor = ratio * advantage;
                    let mut grad = Vec::with_capacity(act_dim);
                    for (i, &p) in pa.iter().enumerate() {
                        let onehot = if i == tr.accel { 1.0 } else { 0.0 };
                        grad.push(factor * (p - onehot));
                    }
                    for (i, &p) in pb.iter().enumerate() {
                        let onehot = if i == tr.bucket { 1.0 } else { 0.0 };
                        grad.push(factor * (p - onehot));
                    }
                    self.policy.backward(&p_cache, &grad);
                }
            }
            self.policy.step(self.opt, self.buffer.len());
            self.critic.step(self.opt, self.buffer.len());
        }
        self.buffer.clear();
        self.episodes_in_batch = 0;
    }
}

impl SessionCore for Ppo2Core {
    fn next_wave(
        &mut self,
        want: usize,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping> {
        // Collect up to the slice's worth of episodes, never crossing the
        // frozen-policy batch boundary.
        let room = self.ppo.config.episodes_per_batch.max(1) - self.episodes_in_batch;
        let count = want.min(room);
        let mut wave = Vec::with_capacity(count);
        for _ in 0..count {
            let (steps, mapping) = self.rollout(problem, rng);
            self.inflight.push(steps);
            wave.push(mapping);
        }
        wave
    }

    fn absorb(&mut self, _wave: Vec<Mapping>, fits: &[f64], problem: &dyn MappingProblem) {
        let n = problem.num_jobs();
        let m = problem.num_accels();
        for (steps, &fitness) in std::mem::take(&mut self.inflight).into_iter().zip(fits) {
            let norm_reward = self.normalizer.normalize(fitness);
            for (step, (obs, a, b, logp)) in steps.into_iter().enumerate() {
                let ret = norm_reward * self.ppo.config.gamma.powi((n - 1 - step) as i32);
                self.buffer.push(Transition { obs, accel: a, bucket: b, old_logp: logp, ret });
            }
            self.episodes_in_batch += 1;
        }
        // ----- clipped policy / value updates at the batch boundary -----
        if self.episodes_in_batch == self.ppo.config.episodes_per_batch.max(1) {
            self.update(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = Ppo2::new().search(&p, 48, &mut StdRng::seed_from_u64(0));
        let b = Ppo2::new().search(&p, 48, &mut StdRng::seed_from_u64(0));
        assert_eq!(a.history.num_samples(), 48);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn partial_final_batch_is_handled() {
        let p = ToyProblem { jobs: 6, accels: 2 };
        // 13 is not a multiple of the default batch size (8).
        let o = Ppo2::new().search(&p, 13, &mut StdRng::seed_from_u64(1));
        assert_eq!(o.history.num_samples(), 13);
    }

    #[test]
    fn learning_does_not_collapse() {
        let p = ToyProblem { jobs: 10, accels: 2 };
        let o = Ppo2::new().search(&p, 400, &mut StdRng::seed_from_u64(2));
        let samples = o.history.samples();
        let early: f64 = samples[..80].iter().sum::<f64>() / 80.0;
        let late: f64 = samples[samples.len() - 80..].iter().sum::<f64>() / 80.0;
        assert!(late >= early * 0.95, "early {early:.2}, late {late:.2}");
    }
}
