//! The mapping-construction episode the RL agents interact with.
//!
//! An episode walks over the jobs of the group in index order; at every step
//! the agent picks (i) the sub-accelerator for the current job and (ii) a
//! priority bucket. When all jobs are placed the encoded mapping is evaluated
//! by M3E and the achieved fitness becomes the terminal reward (intermediate
//! rewards are zero). One episode therefore costs exactly one sample of the
//! optimization budget.

use magma_m3e::{Mapping, MappingProblem};

/// Number of discrete priority buckets the agents choose from.
pub const PRIORITY_BUCKETS: usize = 10;

/// Builds the observation vector for the job at `step`, given the
/// per-accelerator load accumulated so far (in seconds of no-stall latency).
///
/// Features: progress fraction, log-scaled job FLOPs, then per core the
/// normalized no-stall latency, the normalized required bandwidth and the
/// normalized accumulated load. All features lie in `[0, 1]`.
pub fn observation(problem: &dyn MappingProblem, step: usize, loads: &[f64]) -> Vec<f64> {
    let m = problem.num_accels();
    let n = problem.num_jobs();
    let mut obs = Vec::with_capacity(2 + 3 * m);
    obs.push(step as f64 / n as f64);

    let flops = problem.profile(step, 0).map(|p| p.flops as f64).unwrap_or(1.0);
    obs.push(((flops.max(1.0)).log10() / 12.0).clamp(0.0, 1.0));

    let lats: Vec<f64> = (0..m)
        .map(|a| problem.profile(step, a).map(|p| p.no_stall_seconds).unwrap_or(1.0))
        .collect();
    let bws: Vec<f64> = (0..m)
        .map(|a| problem.profile(step, a).map(|p| p.required_bw_gbps).unwrap_or(1.0))
        .collect();
    let max_lat = lats.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let max_bw = bws.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let max_load = loads.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    for a in 0..m {
        obs.push(lats[a] / max_lat);
        obs.push(bws[a] / max_bw);
        obs.push(loads[a] / max_load.max(f64::MIN_POSITIVE));
    }
    obs
}

/// Dimensionality of the observation vector for a problem.
pub fn observation_dim(problem: &dyn MappingProblem) -> usize {
    2 + 3 * problem.num_accels()
}

/// The actions taken during one episode, turned into an encoded mapping.
#[derive(Debug, Clone)]
pub struct EpisodeActions {
    /// Chosen core per job, in job order.
    pub accels: Vec<usize>,
    /// Chosen priority bucket per job, in job order.
    pub buckets: Vec<usize>,
}

impl EpisodeActions {
    /// Converts the collected actions into an encoded mapping. Priorities are
    /// placed at the bucket centre and perturbed by the job index so ties
    /// resolve deterministically.
    pub fn into_mapping(self, num_accels: usize) -> Mapping {
        let n = self.accels.len();
        let priority: Vec<f64> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                ((b as f64 + 0.5) / PRIORITY_BUCKETS as f64 + (i as f64 / n as f64) * 1e-3).min(1.0)
            })
            .collect();
        Mapping::new(self.accels, priority, num_accels)
    }
}

/// Running mean/variance used to normalize the terminal rewards so the
/// policy-gradient scale is stable across problems of very different
/// throughput magnitudes.
#[derive(Debug, Clone, Default)]
pub struct RewardNormalizer {
    count: f64,
    mean: f64,
    m2: f64,
}

impl RewardNormalizer {
    /// Creates an empty normalizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a raw reward and returns its normalized value (zero mean, unit
    /// variance under the running statistics).
    pub fn normalize(&mut self, reward: f64) -> f64 {
        self.count += 1.0;
        let delta = reward - self.mean;
        self.mean += delta / self.count;
        self.m2 += delta * (reward - self.mean);
        let std = if self.count > 1.0 { (self.m2 / (self.count - 1.0)).sqrt() } else { 1.0 };
        (reward - self.mean) / std.max(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;

    #[test]
    fn observation_shape_and_bounds() {
        let p = ToyProblem { jobs: 10, accels: 3 };
        let loads = vec![0.0, 1.0, 2.0];
        let obs = observation(&p, 4, &loads);
        assert_eq!(obs.len(), observation_dim(&p));
        assert!(obs.iter().all(|v| (0.0..=1.0).contains(v)), "{obs:?}");
    }

    #[test]
    fn episode_actions_decode_to_valid_mapping() {
        let actions = EpisodeActions { accels: vec![0, 1, 2, 1], buckets: vec![0, 9, 5, 5] };
        let m = actions.into_mapping(3);
        assert_eq!(m.num_jobs(), 4);
        assert!(m.priority().iter().all(|p| (0.0..=1.0).contains(p)));
        // Bucket 0 decodes to a higher priority (smaller value) than bucket 9.
        assert!(m.priority()[0] < m.priority()[1]);
    }

    #[test]
    fn reward_normalizer_centres_rewards() {
        let mut n = RewardNormalizer::new();
        let vals: Vec<f64> = (0..50).map(|i| n.normalize(100.0 + i as f64)).collect();
        // After warm-up the normalized values hover around zero.
        let tail_mean: f64 = vals[25..].iter().sum::<f64>() / 25.0;
        assert!(tail_mean.abs() < 2.0);
    }
}
