//! Advantage Actor-Critic (A2C), following the paper's configuration:
//! 3 × 128 MLP policy and critic, discount 0.99, learning rate 7e-4, RMSProp.

use crate::optimizer::{Optimizer, SessionState};
use crate::rl::env::{
    observation, observation_dim, EpisodeActions, RewardNormalizer, PRIORITY_BUCKETS,
};
use crate::rl::nn::{policy_grad_logits, sample_categorical, softmax, GradOptimizer, Mlp};
use crate::session::{CoreDrive, SessionCore};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;

/// A2C hyper-parameters (Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct A2cConfig {
    /// Hidden layer width (paper: 128, three layers).
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Learning rate for both networks.
    pub learning_rate: f64,
    /// Entropy-bonus coefficient (encourages exploration).
    pub entropy_coef: f64,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig { hidden: 128, gamma: 0.99, learning_rate: 7e-4, entropy_coef: 0.01 }
    }
}

/// The A2C mapper.
#[derive(Debug, Clone, Copy, Default)]
pub struct A2c {
    config: A2cConfig,
}

impl A2c {
    /// Creates A2C with the paper's hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates A2C with explicit hyper-parameters.
    pub fn with_config(config: A2cConfig) -> Self {
        A2c { config }
    }
}

impl Optimizer for A2c {
    fn name(&self) -> &str {
        "RL A2C"
    }

    fn open(&self, problem: &dyn MappingProblem, rng: &mut StdRng) -> Box<dyn SessionState> {
        CoreDrive::new(A2cCore::new(*self, problem, rng)).boxed()
    }
}

/// One rolled-out episode awaiting its fitness: the data the actor-critic
/// update needs.
struct A2cEpisode {
    observations: Vec<Vec<f64>>,
    accels: Vec<usize>,
    buckets: Vec<usize>,
}

/// The incremental A2C stepper. A2C's natural granularity is one episode =
/// one evaluated mapping: each wave rolls out a single episode with the
/// current policy and the actor-critic update runs as soon as its fitness is
/// absorbed — the exact episode loop of the one-shot search, sliced.
struct A2cCore {
    a2c: A2c,
    policy: Mlp,
    critic: Mlp,
    opt: GradOptimizer,
    normalizer: RewardNormalizer,
    inflight: Option<A2cEpisode>,
}

impl A2cCore {
    fn new(a2c: A2c, problem: &dyn MappingProblem, rng: &mut StdRng) -> Self {
        let m = problem.num_accels();
        let obs_dim = observation_dim(problem);
        let h = a2c.config.hidden;
        let act_dim = m + PRIORITY_BUCKETS;
        A2cCore {
            a2c,
            policy: Mlp::new(&[obs_dim, h, h, h, act_dim], rng),
            critic: Mlp::new(&[obs_dim, h, h, h, 1], rng),
            opt: GradOptimizer::RmsProp { lr: a2c.config.learning_rate, decay: 0.99 },
            normalizer: RewardNormalizer::new(),
            inflight: None,
        }
    }
}

impl SessionCore for A2cCore {
    fn next_wave(
        &mut self,
        _want: usize,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping> {
        // ----- roll out one episode -----
        let n = problem.num_jobs();
        let m = problem.num_accels();
        let mut loads = vec![0.0f64; m];
        let mut observations = Vec::with_capacity(n);
        let mut accels = Vec::with_capacity(n);
        let mut buckets = Vec::with_capacity(n);
        for step in 0..n {
            let obs = observation(problem, step, &loads);
            let logits = self.policy.forward(&obs);
            let pa = softmax(&logits[..m]);
            let pb = softmax(&logits[m..]);
            let a = sample_categorical(&pa, rng);
            let b = sample_categorical(&pb, rng);
            loads[a] += problem.profile(step, a).map(|p| p.no_stall_seconds).unwrap_or(1.0);
            observations.push(obs);
            accels.push(a);
            buckets.push(b);
        }
        let mapping =
            EpisodeActions { accels: accels.clone(), buckets: buckets.clone() }.into_mapping(m);
        self.inflight = Some(A2cEpisode { observations, accels, buckets });
        // A2C updates after every episode, so its rollout "batch" is a
        // single mapping — still routed through the shared batch oracle.
        vec![mapping]
    }

    fn absorb(&mut self, _wave: Vec<Mapping>, fits: &[f64], problem: &dyn MappingProblem) {
        let episode = self.inflight.take().expect("an episode is in flight");
        let n = problem.num_jobs();
        let m = problem.num_accels();
        let norm_reward = self.normalizer.normalize(fits[0]);

        // ----- actor-critic update -----
        for step in 0..n {
            let ret = norm_reward * self.a2c.config.gamma.powi((n - 1 - step) as i32);
            let obs = &episode.observations[step];
            let (v_out, v_cache) = self.critic.forward_cached(obs);
            let advantage = ret - v_out[0];
            self.critic.backward(&v_cache, &[2.0 * (v_out[0] - ret)]);

            let (logits, p_cache) = self.policy.forward_cached(obs);
            let pa = softmax(&logits[..m]);
            let pb = softmax(&logits[m..]);
            let mut grad = Vec::with_capacity(m + PRIORITY_BUCKETS);
            grad.extend(policy_grad_logits(&pa, episode.accels[step], advantage));
            grad.extend(policy_grad_logits(&pb, episode.buckets[step], advantage));
            // Entropy bonus: push probabilities toward uniform.
            for (i, g) in grad.iter_mut().enumerate() {
                let p = if i < m { pa[i] } else { pb[i - m] };
                *g -= self.a2c.config.entropy_coef * (-(p.ln() + 1.0)) * p;
            }
            self.policy.backward(&p_cache, &grad);
        }
        self.policy.step(self.opt, n);
        self.critic.step(self.opt, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = A2c::new().search(&p, 60, &mut StdRng::seed_from_u64(0));
        let b = A2c::new().search(&p, 60, &mut StdRng::seed_from_u64(0));
        assert_eq!(a.history.num_samples(), 60);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn learning_improves_mean_episode_reward() {
        let p = ToyProblem { jobs: 10, accels: 2 };
        let o = A2c::new().search(&p, 600, &mut StdRng::seed_from_u64(3));
        let samples = o.history.samples();
        let early: f64 = samples[..100].iter().sum::<f64>() / 100.0;
        let late: f64 = samples[samples.len() - 100..].iter().sum::<f64>() / 100.0;
        assert!(
            late >= early * 0.98,
            "policy should not get materially worse: early {early:.2}, late {late:.2}"
        );
    }
}
