//! A minimal dense neural-network library with manual backpropagation.
//!
//! Only what the RL agents need: fully-connected layers with ReLU hidden
//! activations and a linear output, softmax/log-softmax helpers, and the two
//! gradient optimizers the paper's agents use (RMSProp for A2C, Adam for
//! PPO2).

use rand::rngs::StdRng;
use rand::Rng;

/// Which first-order optimizer updates the parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GradOptimizer {
    /// RMSProp with the given learning rate and decay (A2C's default).
    RmsProp {
        /// Learning rate.
        lr: f64,
        /// Squared-gradient decay.
        decay: f64,
    },
    /// Adam with the given learning rate (PPO2's default).
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay.
        beta1: f64,
        /// Second-moment decay.
        beta2: f64,
    },
}

const EPS: f64 = 1e-8;

/// One dense layer with its parameters, gradients and optimizer state.
#[derive(Debug, Clone)]
struct Dense {
    rows: usize,
    cols: usize,
    w: Vec<f64>,
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / cols as f64).sqrt();
        let w = (0..rows * cols).map(|_| rng.gen_range(-scale..scale)).collect();
        Dense {
            rows,
            cols,
            w,
            b: vec![0.0; rows],
            gw: vec![0.0; rows * cols],
            gb: vec![0.0; rows],
            mw: vec![0.0; rows * cols],
            vw: vec![0.0; rows * cols],
            mb: vec![0.0; rows],
            vb: vec![0.0; rows],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = self.b.clone();
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.w[r * self.cols..(r + 1) * self.cols];
            *o += row.iter().zip(x).map(|(w, x)| w * x).sum::<f64>();
        }
        out
    }

    /// Accumulates gradients for this layer and returns dL/dx.
    fn backward(&mut self, x: &[f64], grad_out: &[f64]) -> Vec<f64> {
        assert_eq!(grad_out.len(), self.rows, "gradient/layer size mismatch");
        let mut grad_in = vec![0.0; self.cols];
        for (r, &g_out) in grad_out.iter().enumerate() {
            self.gb[r] += g_out;
            for c in 0..self.cols {
                self.gw[r * self.cols + c] += g_out * x[c];
                grad_in[c] += g_out * self.w[r * self.cols + c];
            }
        }
        grad_in
    }

    fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn step(&mut self, opt: GradOptimizer, t: usize, scale: f64) {
        let update = |w: &mut [f64], g: &[f64], m: &mut [f64], v: &mut [f64]| match opt {
            GradOptimizer::RmsProp { lr, decay } => {
                for i in 0..w.len() {
                    let grad = g[i] * scale;
                    v[i] = decay * v[i] + (1.0 - decay) * grad * grad;
                    w[i] -= lr * grad / (v[i].sqrt() + EPS);
                }
            }
            GradOptimizer::Adam { lr, beta1, beta2 } => {
                for i in 0..w.len() {
                    let grad = g[i] * scale;
                    m[i] = beta1 * m[i] + (1.0 - beta1) * grad;
                    v[i] = beta2 * v[i] + (1.0 - beta2) * grad * grad;
                    let mhat = m[i] / (1.0 - beta1.powi(t as i32));
                    let vhat = v[i] / (1.0 - beta2.powi(t as i32));
                    w[i] -= lr * mhat / (vhat.sqrt() + EPS);
                }
            }
        };
        let (w, gw, mw, vw) = (&mut self.w, &self.gw, &mut self.mw, &mut self.vw);
        update(w, gw, mw, vw);
        let (b, gb, mb, vb) = (&mut self.b, &self.gb, &mut self.mb, &mut self.vb);
        update(b, gb, mb, vb);
    }
}

/// A multi-layer perceptron with ReLU hidden layers and a linear output.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    step_count: usize,
}

/// The per-layer activations cached by [`Mlp::forward_cached`], needed for
/// backpropagation.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Input to each layer (post-activation of the previous layer).
    inputs: Vec<Vec<f64>>,
    /// Pre-activation output of each layer.
    pre_acts: Vec<Vec<f64>>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[in, 128, 128, 128,
    /// out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], rng: &mut StdRng) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least an input and an output size");
        let layers = sizes.windows(2).map(|w| Dense::new(w[1], w[0], rng)).collect();
        Mlp { layers, step_count: 0 }
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass without caching (inference only).
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i != last {
                h.iter_mut().for_each(|v| *v = v.max(0.0));
            }
        }
        h
    }

    /// Forward pass that records the activations needed for
    /// [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, ForwardCache) {
        let mut cache = ForwardCache { inputs: Vec::new(), pre_acts: Vec::new() };
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            cache.inputs.push(h.clone());
            let pre = layer.forward(&h);
            cache.pre_acts.push(pre.clone());
            h = pre;
            if i != last {
                h.iter_mut().for_each(|v| *v = v.max(0.0));
            }
        }
        (h, cache)
    }

    /// Backpropagates `grad_out` (dL/d output) through the network,
    /// accumulating parameter gradients.
    pub fn backward(&mut self, cache: &ForwardCache, grad_out: &[f64]) {
        let mut grad = grad_out.to_vec();
        let last = self.layers.len() - 1;
        for i in (0..self.layers.len()).rev() {
            if i != last {
                // ReLU derivative on the pre-activation.
                for (g, &pre) in grad.iter_mut().zip(&cache.pre_acts[i]) {
                    if pre <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[i].backward(&cache.inputs[i], &grad);
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(|l| l.zero_grad());
    }

    /// Applies one optimizer step with the accumulated gradients, scaled by
    /// `1 / batch` (pass `batch = 1` for unscaled updates), then clears them.
    pub fn step(&mut self, opt: GradOptimizer, batch: usize) {
        self.step_count += 1;
        let scale = 1.0 / batch.max(1) as f64;
        for l in &mut self.layers {
            l.step(opt, self.step_count, scale);
        }
        self.zero_grad();
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum.max(EPS)).collect()
}

/// Samples an index from a probability distribution.
pub fn sample_categorical(probs: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u <= acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Gradient of `-log p[action] * advantage` with respect to the logits:
/// `advantage * (softmax - onehot(action))`.
pub fn policy_grad_logits(probs: &[f64], action: usize, advantage: f64) -> Vec<f64> {
    probs
        .iter()
        .enumerate()
        .map(|(i, &p)| advantage * (p - if i == action { 1.0 } else { 0.0 }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[4, 16, 3], &mut rng);
        let y = net.forward(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(y.len(), 3);
        assert!(net.num_params() > 0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn categorical_sampling_is_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = softmax(&[0.0, 0.0, 5.0]);
        for _ in 0..50 {
            let s = sample_categorical(&p, &mut rng);
            assert!(s < 3);
        }
    }

    #[test]
    fn gradient_descent_fits_a_simple_regression() {
        // Learn y = 2x1 - x2 with a tiny MLP and Adam.
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Mlp::new(&[2, 16, 1], &mut rng);
        let opt = GradOptimizer::Adam { lr: 0.01, beta1: 0.9, beta2: 0.999 };
        let data: Vec<([f64; 2], f64)> = (0..64)
            .map(|_| {
                let x = [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
                (x, 2.0 * x[0] - x[1])
            })
            .collect();
        let mut last_loss = f64::INFINITY;
        for _ in 0..300 {
            let mut loss = 0.0;
            for (x, y) in &data {
                let (out, cache) = net.forward_cached(x);
                let err = out[0] - y;
                loss += err * err;
                net.backward(&cache, &[2.0 * err]);
            }
            net.step(opt, data.len());
            last_loss = loss / data.len() as f64;
        }
        assert!(last_loss < 0.05, "regression did not converge: {last_loss}");
    }

    #[test]
    fn policy_gradient_direction_increases_chosen_action_probability() {
        let probs = softmax(&[0.0, 0.0]);
        // Positive advantage for action 0: the gradient of the loss w.r.t.
        // logit 0 must be negative (gradient *descent* then raises it).
        let g = policy_grad_logits(&probs, 0, 1.0);
        assert!(g[0] < 0.0 && g[1] > 0.0);
    }

    #[test]
    fn rmsprop_also_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Mlp::new(&[1, 8, 1], &mut rng);
        let opt = GradOptimizer::RmsProp { lr: 0.005, decay: 0.99 };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let mut loss = 0.0;
            for i in 0..16 {
                let x = [i as f64 / 16.0];
                let target = 3.0 * x[0];
                let (out, cache) = net.forward_cached(&x);
                let err = out[0] - target;
                loss += err * err;
                net.backward(&cache, &[2.0 * err]);
            }
            net.step(opt, 16);
            last = loss;
            first.get_or_insert(loss);
        }
        assert!(last < first.unwrap());
    }
}
