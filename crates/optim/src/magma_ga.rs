//! MAGMA — the Multi-Accelerator Genetic Mapping Algorithm (Section V).
//!
//! MAGMA is a genetic algorithm whose operators are designed around the
//! structure of the mapping encoding:
//!
//! * **Mutation** — the standard operator: randomly re-draw a fraction of the
//!   genes (rate 0.05).
//! * **Crossover-gen** — genome-wise single-pivot crossover: pick *one* of
//!   the two genomes (sub-accelerator selection or job priority) and exchange
//!   genes after a random pivot, leaving the other genome untouched (rate
//!   0.9, the main operator).
//! * **Crossover-rg** — range crossover: pick a gene range and exchange it in
//!   *both* genomes simultaneously, preserving the cross-genome dependency of
//!   the affected jobs (rate 0.05).
//! * **Crossover-accel** — accelerator crossover: copy one parent's complete
//!   job set (selection + priorities) for one sub-accelerator into the child,
//!   randomly re-assigning the child's jobs that previously occupied that
//!   core to preserve load balance (rate 0.05).
//!
//! The population size defaults to the group size (as in the paper), elites
//! survive unchanged, and the whole search respects a fixed sampling budget.

use crate::optimizer::{Optimizer, SearchOutcome, SearchSession, SessionState};
use crate::session::{CoreDrive, SessionCore};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which genetic operators are enabled — the knob behind the operator
/// ablation study (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorSet {
    /// Enable the standard mutation operator.
    pub mutation: bool,
    /// Enable the genome-wise crossover (Crossover-gen).
    pub crossover_gen: bool,
    /// Enable the range crossover (Crossover-rg).
    pub crossover_rg: bool,
    /// Enable the accelerator crossover (Crossover-accel).
    pub crossover_accel: bool,
}

impl OperatorSet {
    /// All four operators (full MAGMA).
    pub fn all() -> Self {
        OperatorSet {
            mutation: true,
            crossover_gen: true,
            crossover_rg: true,
            crossover_accel: true,
        }
    }

    /// Mutation only (the weakest ablation level of Fig. 16).
    pub fn mutation_only() -> Self {
        OperatorSet {
            mutation: true,
            crossover_gen: false,
            crossover_rg: false,
            crossover_accel: false,
        }
    }

    /// Mutation + Crossover-gen (the middle ablation level of Fig. 16).
    pub fn mutation_and_gen() -> Self {
        OperatorSet {
            mutation: true,
            crossover_gen: true,
            crossover_rg: false,
            crossover_accel: false,
        }
    }

    /// A short label for result tables.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.mutation {
            parts.push("Mut");
        }
        if self.crossover_gen {
            parts.push("Crs-gen");
        }
        if self.crossover_rg {
            parts.push("Crs-rg");
        }
        if self.crossover_accel {
            parts.push("Crs-accel");
        }
        parts.join("+")
    }
}

impl Default for OperatorSet {
    fn default() -> Self {
        Self::all()
    }
}

/// MAGMA hyper-parameters. The defaults are the paper's values (Section V-B2,
/// tuned via Bayesian optimization in the original work; the tuner in
/// [`crate::hyper`] reproduces that step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MagmaConfig {
    /// Population size; `None` means "equal to the group size" (the paper's
    /// choice), clamped to at least 16.
    pub population_size: Option<usize>,
    /// Fraction of the population carried over unchanged as elites.
    pub elite_ratio: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Probability of applying Crossover-gen to a child.
    pub crossover_gen_rate: f64,
    /// Probability of applying Crossover-rg to a child.
    pub crossover_rg_rate: f64,
    /// Probability of applying Crossover-accel to a child.
    pub crossover_accel_rate: f64,
    /// Which operators are enabled (ablation knob).
    pub operators: OperatorSet,
    /// Optional warm-start population (Section V-C). When set, these
    /// individuals replace random initialization.
    pub initial_population: Option<Vec<Mapping>>,
}

impl Default for MagmaConfig {
    fn default() -> Self {
        MagmaConfig {
            population_size: None,
            elite_ratio: 0.25,
            mutation_rate: 0.05,
            crossover_gen_rate: 0.9,
            crossover_rg_rate: 0.05,
            crossover_accel_rate: 0.05,
            operators: OperatorSet::all(),
            initial_population: None,
        }
    }
}

/// The MAGMA optimizer.
#[derive(Debug, Clone, Default)]
pub struct Magma {
    config: MagmaConfig,
}

impl Magma {
    /// Creates MAGMA with the paper's default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates MAGMA with explicit hyper-parameters.
    pub fn with_config(config: MagmaConfig) -> Self {
        Magma { config }
    }

    /// Creates MAGMA with a restricted operator set (Fig. 16 ablations).
    pub fn with_operators(operators: OperatorSet) -> Self {
        Magma { config: MagmaConfig { operators, ..MagmaConfig::default() } }
    }

    /// Creates MAGMA seeded with a warm-start population (Section V-C).
    pub fn with_warm_start(population: Vec<Mapping>) -> Self {
        Magma {
            config: MagmaConfig { initial_population: Some(population), ..MagmaConfig::default() },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MagmaConfig {
        &self.config
    }

    /// Budget-limited resume: continues a search from `seeds` (e.g. a
    /// warm-start population adapted from a stored solution) for exactly
    /// `budget` further evaluations, keeping every other hyper-parameter of
    /// this configuration.
    ///
    /// This is the refinement half of the serving layer's adapt-then-refine
    /// path: a cache hit adapts the stored mapping into a seed population
    /// (`StoredSolution::seed_population`) and spends a small fraction of the
    /// cold-search budget here. The first seed is evaluated first, so the
    /// outcome is never worse than the adapted solution itself.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0` or `seeds` is empty.
    pub fn refine(
        &self,
        problem: &dyn MappingProblem,
        seeds: Vec<Mapping>,
        budget: usize,
        rng: &mut StdRng,
    ) -> SearchOutcome {
        assert!(!seeds.is_empty(), "refinement needs at least one seed");
        self.refining(seeds).search(problem, budget, rng)
    }

    /// The resumable counterpart of [`Magma::refine`]: opens a
    /// [`SearchSession`] seeded with `seeds`, so a serving layer can advance
    /// the refinement in slices (e.g. interleaved with accelerator
    /// execution) and stop at whatever budget it decides to spend. Stepping
    /// the session to `budget` samples produces exactly the outcome of
    /// [`Magma::refine`] at that budget.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn refine_session<'a>(
        &self,
        problem: &'a dyn MappingProblem,
        seeds: Vec<Mapping>,
        rng: &'a mut StdRng,
    ) -> Box<dyn SearchSession + 'a> {
        assert!(!seeds.is_empty(), "refinement needs at least one seed");
        self.refining(seeds).start(problem, rng)
    }

    /// The owned counterpart of [`Magma::refine_session`]: returns a
    /// detached [`SessionState`] seeded with `seeds`, for schedulers that
    /// hold many live refinements and lend the problem/RNG per step.
    /// Bit-identical to `refine_session` (both delegate to the same seeded
    /// configuration).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn refine_open(
        &self,
        problem: &dyn MappingProblem,
        seeds: Vec<Mapping>,
        rng: &mut StdRng,
    ) -> Box<dyn SessionState> {
        assert!(!seeds.is_empty(), "refinement needs at least one seed");
        self.refining(seeds).open(problem, rng)
    }

    /// A clone of this configuration with `seeds` as the initial population.
    fn refining(&self, seeds: Vec<Mapping>) -> Magma {
        Magma { config: MagmaConfig { initial_population: Some(seeds), ..self.config.clone() } }
    }

    fn population_size(&self, problem: &dyn MappingProblem, budget: usize) -> usize {
        let base = self.config.population_size.unwrap_or(problem.num_jobs());
        base.max(16).min(budget.max(2))
    }

    /// The population size [`Magma::search`] (and therefore
    /// [`Magma::refine`]) will actually use on `problem` at `budget`.
    /// Callers building a seed population (e.g. the serving layer's
    /// cache-hit path) size it with this so the seeds fill exactly one
    /// initial generation — no seed is dropped and none of the refinement
    /// budget is padded with random individuals.
    pub fn population_size_for(&self, problem: &dyn MappingProblem, budget: usize) -> usize {
        self.population_size(problem, budget)
    }

    // ----- genetic operators -------------------------------------------------

    /// Standard mutation: every gene is re-drawn with probability
    /// `mutation_rate`.
    fn mutate(&self, child: &mut Mapping, num_accels: usize, rng: &mut StdRng) {
        let n = child.num_jobs();
        for i in 0..n {
            if rng.gen::<f64>() < self.config.mutation_rate {
                child.accel_sel_mut()[i] = rng.gen_range(0..num_accels);
            }
            if rng.gen::<f64>() < self.config.mutation_rate {
                child.priority_mut()[i] = rng.gen_range(0.0..1.0);
            }
        }
    }

    /// Crossover-gen: single-pivot crossover restricted to one randomly
    /// chosen genome.
    fn crossover_gen(child: &mut Mapping, mom: &Mapping, rng: &mut StdRng) {
        let n = child.num_jobs();
        let pivot = rng.gen_range(0..n);
        if rng.gen::<bool>() {
            for i in pivot..n {
                child.accel_sel_mut()[i] = mom.accel_sel()[i];
            }
        } else {
            for i in pivot..n {
                child.priority_mut()[i] = mom.priority()[i];
            }
        }
    }

    /// Crossover-rg: exchange a gene *range* across both genomes at once,
    /// preserving the per-job coupling between selection and priority.
    fn crossover_rg(child: &mut Mapping, mom: &Mapping, rng: &mut StdRng) {
        let n = child.num_jobs();
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for i in lo..=hi {
            child.accel_sel_mut()[i] = mom.accel_sel()[i];
            child.priority_mut()[i] = mom.priority()[i];
        }
    }

    /// Crossover-accel: adopt the mom's complete job set for one randomly
    /// chosen sub-accelerator; the child's jobs previously on that core are
    /// randomly re-assigned to keep the load balanced.
    fn crossover_accel(child: &mut Mapping, mom: &Mapping, num_accels: usize, rng: &mut StdRng) {
        let target = rng.gen_range(0..num_accels);
        let n = child.num_jobs();
        for i in 0..n {
            if mom.accel_sel()[i] == target {
                child.accel_sel_mut()[i] = target;
                child.priority_mut()[i] = mom.priority()[i];
            } else if child.accel_sel()[i] == target {
                // Load balancing: evict to a random other core.
                child.accel_sel_mut()[i] = rng.gen_range(0..num_accels);
            }
        }
    }

    fn make_child(
        &self,
        dad: &Mapping,
        mom: &Mapping,
        num_accels: usize,
        rng: &mut StdRng,
    ) -> Mapping {
        let ops = &self.config.operators;
        let mut child = dad.clone();
        if ops.crossover_gen && rng.gen::<f64>() < self.config.crossover_gen_rate {
            Self::crossover_gen(&mut child, mom, rng);
        }
        if ops.crossover_rg && rng.gen::<f64>() < self.config.crossover_rg_rate {
            Self::crossover_rg(&mut child, mom, rng);
        }
        if ops.crossover_accel && rng.gen::<f64>() < self.config.crossover_accel_rate {
            Self::crossover_accel(&mut child, mom, num_accels, rng);
        }
        if ops.mutation {
            self.mutate(&mut child, num_accels, rng);
        }
        child
    }
}

impl Optimizer for Magma {
    fn name(&self) -> &str {
        "MAGMA"
    }

    fn open(&self, problem: &dyn MappingProblem, _rng: &mut StdRng) -> Box<dyn SessionState> {
        CoreDrive::new(MagmaCore::new(self.clone(), problem)).boxed()
    }
}

/// The incremental MAGMA stepper: carries the population across budget
/// slices. The initial population is emitted lazily (seed individuals first,
/// random fill after); each later generation breeds children lazily, one per
/// demanded sample, from a parent pool frozen when the previous generation
/// finished evaluating — so a session stopped mid-generation has drawn
/// exactly the RNG stream of the one-shot search whose budget ran out there.
struct MagmaCore {
    magma: Magma,
    num_jobs: usize,
    num_accels: usize,
    pop_size: usize,
    elite_count: usize,
    /// Individuals of the initial population emitted so far.
    init_emitted: usize,
    /// Whether the initial population has been fully evaluated.
    in_generations: bool,
    /// Evaluated (mapping, fitness) pairs of the generation in flight.
    evaluated: Vec<(Mapping, f64)>,
    /// Elites carried into the generation in flight (empty during init).
    carry: Vec<(Mapping, f64)>,
    /// Parent pool of the generation in flight (top half, sorted).
    parents: Vec<Mapping>,
    children_target: usize,
    children_bred: usize,
}

impl MagmaCore {
    fn new(magma: Magma, problem: &dyn MappingProblem) -> Self {
        let num_jobs = problem.num_jobs();
        let num_accels = problem.num_accels();
        // The nominal (budget-independent) population size: the one-shot
        // search clamped this to the budget, but that clamp only ever bound
        // runs that ended inside the initial population — which a lazily
        // emitting session reproduces without knowing the budget.
        let pop_size = magma.config.population_size.unwrap_or(num_jobs).max(16);
        let elite_count = ((pop_size as f64 * magma.config.elite_ratio).round() as usize)
            .clamp(1, pop_size.saturating_sub(1).max(1));
        MagmaCore {
            magma,
            num_jobs,
            num_accels,
            pop_size,
            elite_count,
            init_emitted: 0,
            in_generations: false,
            evaluated: Vec::new(),
            carry: Vec::new(),
            parents: Vec::new(),
            children_target: 0,
            children_bred: 0,
        }
    }

    /// The next individual of the initial population: a warm-start seed
    /// while they last, a fresh random mapping after.
    fn next_initial(&self, index: usize, rng: &mut StdRng) -> Mapping {
        match &self.magma.config.initial_population {
            Some(seed) if index < seed.len().min(self.pop_size) => seed[index].clone(),
            _ => Mapping::random(rng, self.num_jobs, self.num_accels),
        }
    }

    /// Closes the fully evaluated generation (or initial population) and
    /// sets up breeding for the next one: sort, pick elites and the parent
    /// pool — exactly the per-generation bookkeeping of the one-shot loop.
    fn begin_generation(&mut self) {
        let mut scored = std::mem::take(&mut self.carry);
        scored.append(&mut self.evaluated);
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let half = (scored.len() / 2).max(2).min(scored.len());
        self.parents = scored[..half].iter().map(|(mapping, _)| mapping.clone()).collect();
        scored.truncate(self.elite_count.min(scored.len()));
        self.carry = scored;
        self.children_target = self.pop_size.saturating_sub(self.carry.len());
        self.children_bred = 0;
    }
}

impl SessionCore for MagmaCore {
    fn next_wave(
        &mut self,
        want: usize,
        _problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping> {
        if !self.in_generations {
            if self.init_emitted < self.pop_size {
                let count = want.min(self.pop_size - self.init_emitted);
                let wave: Vec<Mapping> =
                    (0..count).map(|k| self.next_initial(self.init_emitted + k, rng)).collect();
                self.init_emitted += count;
                return wave;
            }
            self.in_generations = true;
            self.begin_generation();
        } else if self.children_bred == self.children_target {
            self.begin_generation();
        }
        let count = want.min(self.children_target - self.children_bred);
        let wave: Vec<Mapping> = (0..count)
            .map(|_| {
                let dad = self.parents.choose(rng).unwrap();
                let mom = self.parents.choose(rng).unwrap();
                self.magma.make_child(dad, mom, self.num_accels, rng)
            })
            .collect();
        self.children_bred += count;
        wave
    }

    fn absorb(&mut self, wave: Vec<Mapping>, fits: &[f64], _problem: &dyn MappingProblem) {
        self.evaluated.extend(wave.into_iter().zip(fits.iter().copied()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::{toy_optimum, ToyProblem};
    use crate::random::RandomSearch;
    use rand::SeedableRng;

    #[test]
    fn finds_near_optimal_toy_solution() {
        let problem = ToyProblem { jobs: 20, accels: 4 };
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = Magma::default().search(&problem, 2_000, &mut rng);
        assert!(outcome.best_fitness >= 0.9 * toy_optimum(20), "got {}", outcome.best_fitness);
    }

    #[test]
    fn respects_budget() {
        let problem = ToyProblem { jobs: 10, accels: 2 };
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = Magma::default().search(&problem, 137, &mut rng);
        assert_eq!(outcome.history.num_samples(), 137);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let problem = ToyProblem { jobs: 12, accels: 3 };
        let a = Magma::default().search(&problem, 300, &mut StdRng::seed_from_u64(7));
        let b = Magma::default().search(&problem, 300, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.best_mapping, b.best_mapping);
    }

    #[test]
    fn beats_random_search_on_same_budget() {
        let problem = ToyProblem { jobs: 30, accels: 4 };
        let budget = 1_500;
        let magma = Magma::default().search(&problem, budget, &mut StdRng::seed_from_u64(3));
        let random = RandomSearch::new().search(&problem, budget, &mut StdRng::seed_from_u64(3));
        assert!(
            magma.best_fitness > random.best_fitness,
            "MAGMA {} should beat random {}",
            magma.best_fitness,
            random.best_fitness
        );
    }

    #[test]
    fn full_operator_set_at_least_as_good_as_mutation_only() {
        let problem = ToyProblem { jobs: 24, accels: 4 };
        let budget = 800;
        let full = Magma::with_operators(OperatorSet::all()).search(
            &problem,
            budget,
            &mut StdRng::seed_from_u64(11),
        );
        let mut_only = Magma::with_operators(OperatorSet::mutation_only()).search(
            &problem,
            budget,
            &mut StdRng::seed_from_u64(11),
        );
        assert!(full.best_fitness >= mut_only.best_fitness * 0.95);
    }

    #[test]
    fn warm_start_population_is_used() {
        let problem = ToyProblem { jobs: 10, accels: 2 };
        // A hand-built optimal individual.
        let accel: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let prio: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
        let seed = Mapping::new(accel, prio, 2);
        let outcome = Magma::with_warm_start(vec![seed.clone()]).search(
            &problem,
            20,
            &mut StdRng::seed_from_u64(2),
        );
        // With only 20 samples the seeded optimum must already be found.
        assert_eq!(outcome.best_fitness, toy_optimum(10));
    }

    #[test]
    fn refine_is_budget_limited_and_never_below_its_seed() {
        let problem = ToyProblem { jobs: 10, accels: 2 };
        let accel: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let prio: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
        let seed = Mapping::new(accel, prio, 2);
        let seed_fitness = problem.evaluate(&seed);
        // Even a minimal refinement budget evaluates the seed itself.
        for budget in [1, 4, 16] {
            let outcome = Magma::default().refine(
                &problem,
                vec![seed.clone()],
                budget,
                &mut StdRng::seed_from_u64(9),
            );
            assert_eq!(outcome.history.num_samples(), budget, "budget {budget}");
            assert!(outcome.best_fitness >= seed_fitness, "budget {budget}");
        }
    }

    #[test]
    fn refine_is_deterministic() {
        let problem = ToyProblem { jobs: 12, accels: 3 };
        let mut rng = StdRng::seed_from_u64(4);
        let seeds: Vec<Mapping> = (0..6).map(|_| Mapping::random(&mut rng, 12, 3)).collect();
        let a = Magma::default().refine(&problem, seeds.clone(), 60, &mut StdRng::seed_from_u64(5));
        let b = Magma::default().refine(&problem, seeds, 60, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.best_mapping, b.best_mapping);
    }

    #[test]
    fn operator_set_labels() {
        assert_eq!(OperatorSet::mutation_only().label(), "Mut");
        assert_eq!(OperatorSet::mutation_and_gen().label(), "Mut+Crs-gen");
        assert_eq!(OperatorSet::all().label(), "Mut+Crs-gen+Crs-rg+Crs-accel");
    }

    #[test]
    fn crossover_accel_preserves_moms_core_assignment() {
        let mut rng = StdRng::seed_from_u64(5);
        let dad = Mapping::random(&mut rng, 12, 3);
        let mom = Mapping::random(&mut rng, 12, 3);
        // Run the operator many times; whenever a job is on the target core in
        // mom, the child must have it there too. We can't observe the chosen
        // core directly, so check the invariant that the child is always a
        // valid mapping and at least sometimes differs from dad.
        let mut changed = false;
        for _ in 0..50 {
            let mut child = dad.clone();
            Magma::crossover_accel(&mut child, &mom, 3, &mut rng);
            assert!(child.accel_sel().iter().all(|&a| a < 3));
            if child != dad {
                changed = true;
            }
        }
        assert!(changed);
    }
}
