//! Continuous-vector view of the mapping problem.
//!
//! DE, CMA-ES, PSO and TBPSA are continuous black-box optimizers; they search
//! the hyper-cube `[0, 1]^(2n)` and decode candidate vectors through
//! [`Mapping::from_vector`]. This module centralizes that adapter so every
//! vector optimizer evaluates candidates identically.

use crate::parallel::BatchEvaluator;
use magma_m3e::{Mapping, MappingProblem, SearchHistory};
use rand::rngs::StdRng;
use rand::Rng;

/// Adapter exposing a [`MappingProblem`] as a bounded continuous function.
pub struct VectorProblem<'a> {
    problem: &'a dyn MappingProblem,
}

impl<'a> VectorProblem<'a> {
    /// Wraps a mapping problem.
    pub fn new(problem: &'a dyn MappingProblem) -> Self {
        VectorProblem { problem }
    }

    /// Dimensionality of the continuous search space (2 × number of jobs).
    pub fn dims(&self) -> usize {
        2 * self.problem.num_jobs()
    }

    /// Decodes a vector into a mapping (values are clamped into `[0, 1]`).
    pub fn decode(&self, x: &[f64]) -> Mapping {
        Mapping::from_vector(x, self.problem.num_accels())
    }

    /// Evaluates a vector, recording the sample in `history`. Returns the
    /// fitness (higher is better).
    pub fn evaluate(&self, x: &[f64], history: &mut SearchHistory) -> f64 {
        let mapping = self.decode(x);
        let f = self.problem.evaluate(&mapping);
        history.record(&mapping, f);
        f
    }

    /// Evaluates one generation of vectors through the parallel batch oracle
    /// ([`BatchEvaluator::evaluate_batch`]), recording every sample in
    /// `history` in input order. Returns the fitnesses in the same order, so
    /// results are independent of the worker count.
    pub fn evaluate_generation(&self, xs: &[Vec<f64>], history: &mut SearchHistory) -> Vec<f64> {
        let mappings: Vec<Mapping> = xs.iter().map(|x| self.decode(x)).collect();
        let fits = self.problem.evaluate_batch(&mappings);
        for (mapping, &f) in mappings.iter().zip(&fits) {
            history.record(mapping, f);
        }
        fits
    }

    /// Samples a uniformly random point in the unit hyper-cube.
    pub fn random_point(&self, rng: &mut StdRng) -> Vec<f64> {
        (0..self.dims()).map(|_| rng.gen_range(0.0..1.0)).collect()
    }
}

/// Clamps every coordinate into the unit interval.
pub fn clamp_unit(x: &mut [f64]) {
    for v in x {
        *v = v.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn dims_and_decode() {
        let p = ToyProblem { jobs: 7, accels: 3 };
        let vp = VectorProblem::new(&p);
        assert_eq!(vp.dims(), 14);
        let mut rng = StdRng::seed_from_u64(0);
        let x = vp.random_point(&mut rng);
        let m = vp.decode(&x);
        assert_eq!(m.num_jobs(), 7);
        assert!(m.accel_sel().iter().all(|&a| a < 3));
    }

    #[test]
    fn evaluate_records_history() {
        let p = ToyProblem { jobs: 5, accels: 2 };
        let vp = VectorProblem::new(&p);
        let mut rng = StdRng::seed_from_u64(1);
        let mut h = SearchHistory::new();
        let f = vp.evaluate(&vp.random_point(&mut rng), &mut h);
        assert_eq!(h.num_samples(), 1);
        assert_eq!(h.best_fitness(), Some(f));
    }

    #[test]
    fn evaluate_generation_matches_one_by_one() {
        let p = ToyProblem { jobs: 6, accels: 2 };
        let vp = VectorProblem::new(&p);
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<Vec<f64>> = (0..9).map(|_| vp.random_point(&mut rng)).collect();

        let mut serial = SearchHistory::new();
        let one_by_one: Vec<f64> = xs.iter().map(|x| vp.evaluate(x, &mut serial)).collect();
        let mut batched = SearchHistory::new();
        let generation = vp.evaluate_generation(&xs, &mut batched);

        assert_eq!(generation, one_by_one);
        assert_eq!(batched.samples(), serial.samples());
        assert_eq!(batched.best_curve(), serial.best_curve());
    }

    #[test]
    fn clamp_unit_bounds_values() {
        let mut x = vec![-0.5, 0.3, 1.7];
        clamp_unit(&mut x);
        assert_eq!(x, vec![0.0, 0.3, 1.0]);
    }
}
