//! Hyper-parameter tuning for MAGMA (Section V-B3).
//!
//! The paper selects MAGMA's mutation/crossover rates with a Bayesian
//! optimization framework run across multiple workloads. This module
//! provides a lightweight equivalent: random search over the rate space with
//! an exploitation phase around the incumbent (a simplified
//! tree-structured-Parzen-estimator-style loop), scored as the average best
//! fitness across a set of tuning problems.

use crate::magma_ga::{Magma, MagmaConfig, OperatorSet};
use crate::optimizer::Optimizer;
use magma_m3e::MappingProblem;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One sampled hyper-parameter configuration and its tuning score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// The sampled rates.
    pub mutation_rate: f64,
    /// Crossover-gen rate.
    pub crossover_gen_rate: f64,
    /// Crossover-rg rate.
    pub crossover_rg_rate: f64,
    /// Crossover-accel rate.
    pub crossover_accel_rate: f64,
    /// Elite ratio.
    pub elite_ratio: f64,
    /// Mean best fitness across the tuning problems.
    pub score: f64,
}

impl TrialResult {
    /// Converts the trial into a full MAGMA configuration.
    pub fn to_config(&self) -> MagmaConfig {
        MagmaConfig {
            population_size: None,
            elite_ratio: self.elite_ratio,
            mutation_rate: self.mutation_rate,
            crossover_gen_rate: self.crossover_gen_rate,
            crossover_rg_rate: self.crossover_rg_rate,
            crossover_accel_rate: self.crossover_accel_rate,
            operators: OperatorSet::all(),
            initial_population: None,
        }
    }
}

/// Hyper-parameter tuner for MAGMA.
#[derive(Debug, Clone, Copy)]
pub struct HyperTuner {
    /// Number of configurations to try.
    pub trials: usize,
    /// Sampling budget given to each MAGMA run during tuning.
    pub budget_per_trial: usize,
    /// Fraction of trials spent exploring uniformly before exploiting around
    /// the incumbent.
    pub exploration_fraction: f64,
}

impl Default for HyperTuner {
    fn default() -> Self {
        HyperTuner { trials: 20, budget_per_trial: 500, exploration_fraction: 0.5 }
    }
}

impl HyperTuner {
    /// Runs the tuning loop over the given problems and returns every trial,
    /// sorted best-first.
    ///
    /// # Panics
    ///
    /// Panics if `problems` is empty or `trials == 0`.
    pub fn tune(&self, problems: &[&dyn MappingProblem], rng: &mut StdRng) -> Vec<TrialResult> {
        assert!(!problems.is_empty(), "need at least one tuning problem");
        assert!(self.trials > 0, "need at least one trial");
        let explore_trials = ((self.trials as f64 * self.exploration_fraction) as usize).max(1);
        let mut results: Vec<TrialResult> = Vec::with_capacity(self.trials);

        for t in 0..self.trials {
            let candidate = if t < explore_trials || results.is_empty() {
                self.sample_uniform(rng)
            } else {
                let best = &results[0];
                self.sample_around(best, rng)
            };
            let config = candidate.to_config();
            let mut score = 0.0;
            for (i, p) in problems.iter().enumerate() {
                let mut run_rng = StdRng::seed_from_u64(1000 + i as u64);
                let outcome = Magma::with_config(config.clone()).search(
                    *p,
                    self.budget_per_trial,
                    &mut run_rng,
                );
                score += outcome.best_fitness;
            }
            score /= problems.len() as f64;
            let mut done = candidate;
            done.score = score;
            results.push(done);
            results
                .sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        }
        results
    }

    /// Returns the best configuration found by [`HyperTuner::tune`].
    pub fn best_config(&self, problems: &[&dyn MappingProblem], rng: &mut StdRng) -> MagmaConfig {
        self.tune(problems, rng)[0].to_config()
    }

    fn sample_uniform(&self, rng: &mut StdRng) -> TrialResult {
        TrialResult {
            mutation_rate: rng.gen_range(0.01..0.3),
            crossover_gen_rate: rng.gen_range(0.3..0.95),
            crossover_rg_rate: rng.gen_range(0.0..0.3),
            crossover_accel_rate: rng.gen_range(0.0..0.3),
            elite_ratio: rng.gen_range(0.1..0.5),
            score: f64::NEG_INFINITY,
        }
    }

    fn sample_around(&self, best: &TrialResult, rng: &mut StdRng) -> TrialResult {
        let jitter = |v: f64, lo: f64, hi: f64, rng: &mut StdRng| {
            (v + rng.gen_range(-0.05..0.05)).clamp(lo, hi)
        };
        TrialResult {
            mutation_rate: jitter(best.mutation_rate, 0.01, 0.3, rng),
            crossover_gen_rate: jitter(best.crossover_gen_rate, 0.3, 0.95, rng),
            crossover_rg_rate: jitter(best.crossover_rg_rate, 0.0, 0.3, rng),
            crossover_accel_rate: jitter(best.crossover_accel_rate, 0.0, 0.3, rng),
            elite_ratio: jitter(best.elite_ratio, 0.1, 0.5, rng),
            score: f64::NEG_INFINITY,
        }
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;

    #[test]
    fn tuner_returns_sorted_trials() {
        let p1 = ToyProblem { jobs: 10, accels: 2 };
        let p2 = ToyProblem { jobs: 12, accels: 3 };
        let tuner = HyperTuner { trials: 5, budget_per_trial: 100, exploration_fraction: 0.6 };
        let mut rng = StdRng::seed_from_u64(0);
        let results = tuner.tune(&[&p1, &p2], &mut rng);
        assert_eq!(results.len(), 5);
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn best_config_has_valid_rates() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let tuner = HyperTuner { trials: 3, budget_per_trial: 60, exploration_fraction: 1.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = tuner.best_config(&[&p], &mut rng);
        assert!((0.01..=0.3).contains(&cfg.mutation_rate));
        assert!((0.3..=0.95).contains(&cfg.crossover_gen_rate));
        assert!((0.1..=0.5).contains(&cfg.elite_ratio));
    }

    #[test]
    #[should_panic(expected = "at least one tuning problem")]
    fn empty_problem_set_panics() {
        let tuner = HyperTuner::default();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = tuner.tune(&[], &mut rng);
    }
}
