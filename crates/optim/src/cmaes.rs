//! (Separable) Covariance Matrix Adaptation Evolution Strategy — the "CMA"
//! baseline of Table IV.
//!
//! A full CMA-ES maintains a dense `d × d` covariance matrix; with
//! `d = 2 × group size = 200` dimensions and a 10 K sample budget the
//! separable (diagonal) variant is the standard choice and is what we
//! implement: a per-dimension variance adapted from the elite half of every
//! generation (the paper's configuration: the best 1/2 of individuals form
//! the elite group).

use crate::optimizer::{Optimizer, SessionState};
use crate::session::{CoreDrive, SessionCore};
use crate::vector::{clamp_unit, VectorProblem};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// CMA-ES hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmaEsConfig {
    /// Offspring per generation (λ).
    pub population_size: usize,
    /// Fraction of the population used as the elite (paper: 1/2).
    pub elite_fraction: f64,
    /// Initial global step size σ.
    pub initial_sigma: f64,
    /// Learning rate for the per-dimension variance update.
    pub variance_learning_rate: f64,
}

impl Default for CmaEsConfig {
    fn default() -> Self {
        CmaEsConfig {
            population_size: 40,
            elite_fraction: 0.5,
            initial_sigma: 0.3,
            variance_learning_rate: 0.3,
        }
    }
}

/// The separable CMA-ES optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct CmaEs {
    config: CmaEsConfig,
}

impl CmaEs {
    /// Creates CMA-ES with the default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates CMA-ES with explicit hyper-parameters.
    pub fn with_config(config: CmaEsConfig) -> Self {
        CmaEs { config }
    }
}

impl Optimizer for CmaEs {
    fn name(&self) -> &str {
        "CMA"
    }

    fn open(&self, problem: &dyn MappingProblem, rng: &mut StdRng) -> Box<dyn SessionState> {
        CoreDrive::new(CmaCore::new(*self, problem, rng)).boxed()
    }
}

/// The incremental separable-CMA-ES stepper: individuals of a generation are
/// sampled lazily from the frozen `(mean, sigma)` distribution; the
/// distribution update runs only when the whole generation has been
/// evaluated. A session stopped mid-generation never updates on a partial
/// elite set — matching the one-shot search, whose partial final generation
/// could no longer influence any sample.
struct CmaCore {
    cma: CmaEs,
    lambda: usize,
    mu: usize,
    normal: Normal,
    mean: Vec<f64>,
    sigma: Vec<f64>,
    gen_xs: Vec<Vec<f64>>,
    gen_fits: Vec<f64>,
}

impl CmaCore {
    fn new(cma: CmaEs, problem: &dyn MappingProblem, rng: &mut StdRng) -> Self {
        let dims = VectorProblem::new(problem).dims();
        // Nominal (budget-independent) offspring count; the one-shot budget
        // clamp only bound runs that ended inside their first generation.
        let lambda = cma.config.population_size.max(4);
        let mu = ((lambda as f64 * cma.config.elite_fraction) as usize).max(1);
        // Mean starts at the centre of the hyper-cube; per-dimension sigma
        // at the configured initial step size (drawn at session start, like
        // the one-shot search drew it at entry).
        let mean: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.3..0.7)).collect();
        CmaCore {
            cma,
            lambda,
            mu,
            normal: Normal::new(0.0, 1.0).expect("unit normal"),
            mean,
            sigma: vec![cma.config.initial_sigma; dims],
            gen_xs: Vec::new(),
            gen_fits: Vec::new(),
        }
    }

    /// The rank-weighted mean / per-dimension variance update over the
    /// completed generation (the one-shot per-generation block, verbatim).
    fn update_distribution(&mut self) {
        let dims = self.mean.len();
        let xs = std::mem::take(&mut self.gen_xs);
        let fits = std::mem::take(&mut self.gen_fits);
        let mut samples: Vec<(Vec<f64>, f64)> = xs.into_iter().zip(fits).collect();
        samples.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let elites = &samples[..self.mu.min(samples.len())];

        // Weighted (rank-linear) mean of the elites.
        let weights: Vec<f64> = (0..elites.len()).map(|r| (elites.len() - r) as f64).collect();
        let wsum: f64 = weights.iter().sum();
        let mut new_mean = vec![0.0; dims];
        for (w, (x, _)) in weights.iter().zip(elites) {
            for d in 0..dims {
                new_mean[d] += w * x[d] / wsum;
            }
        }

        // Per-dimension variance from the elites around the *old* mean
        // (rank-mu style update), blended with the previous sigma.
        let lr = self.cma.config.variance_learning_rate;
        for d in 0..dims {
            let var: f64 = elites.iter().map(|(x, _)| (x[d] - self.mean[d]).powi(2)).sum::<f64>()
                / elites.len() as f64;
            let new_sigma = var.sqrt().max(1e-4);
            self.sigma[d] = (1.0 - lr) * self.sigma[d] + lr * new_sigma;
        }
        self.mean = new_mean;
    }
}

impl SessionCore for CmaCore {
    fn next_wave(
        &mut self,
        want: usize,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping> {
        let vp = VectorProblem::new(problem);
        let dims = self.mean.len();
        if self.gen_xs.len() == self.lambda {
            self.update_distribution();
        }
        let count = want.min(self.lambda - self.gen_xs.len());
        let mut wave = Vec::with_capacity(count);
        for _ in 0..count {
            let mut x: Vec<f64> =
                (0..dims).map(|d| self.mean[d] + self.sigma[d] * self.normal.sample(rng)).collect();
            clamp_unit(&mut x);
            wave.push(vp.decode(&x));
            self.gen_xs.push(x);
        }
        wave
    }

    fn absorb(&mut self, _wave: Vec<Mapping>, fits: &[f64], _problem: &dyn MappingProblem) {
        self.gen_fits.extend_from_slice(fits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn converges_toward_better_solutions() {
        let p = ToyProblem { jobs: 16, accels: 4 };
        let o = CmaEs::new().search(&p, 1_200, &mut StdRng::seed_from_u64(0));
        let early = o.history.best_curve()[39];
        assert!(o.best_fitness >= early);
        assert!(o.best_fitness > 16.0); // better than the random-guess mean
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = CmaEs::new().search(&p, 123, &mut StdRng::seed_from_u64(3));
        let b = CmaEs::new().search(&p, 123, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.history.num_samples(), 123);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn sigma_shrinks_as_population_concentrates() {
        // Indirect check: on a smooth problem a long run must end with the
        // best-so-far curve flat near its maximum (converged), which only
        // happens if the sampling distribution contracted.
        let p = ToyProblem { jobs: 10, accels: 2 };
        let o = CmaEs::new().search(&p, 2_000, &mut StdRng::seed_from_u64(1));
        let curve = o.history.best_curve();
        let last_quarter = &curve[curve.len() * 3 / 4..];
        let improvement = last_quarter.last().unwrap() - last_quarter.first().unwrap();
        assert!(improvement <= 1.0, "still improving fast at the end: {improvement}");
    }
}
