//! (Separable) Covariance Matrix Adaptation Evolution Strategy — the "CMA"
//! baseline of Table IV.
//!
//! A full CMA-ES maintains a dense `d × d` covariance matrix; with
//! `d = 2 × group size = 200` dimensions and a 10 K sample budget the
//! separable (diagonal) variant is the standard choice and is what we
//! implement: a per-dimension variance adapted from the elite half of every
//! generation (the paper's configuration: the best 1/2 of individuals form
//! the elite group).

use crate::optimizer::{Optimizer, SearchOutcome};
use crate::vector::{clamp_unit, VectorProblem};
use magma_m3e::{MappingProblem, SearchHistory};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// CMA-ES hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmaEsConfig {
    /// Offspring per generation (λ).
    pub population_size: usize,
    /// Fraction of the population used as the elite (paper: 1/2).
    pub elite_fraction: f64,
    /// Initial global step size σ.
    pub initial_sigma: f64,
    /// Learning rate for the per-dimension variance update.
    pub variance_learning_rate: f64,
}

impl Default for CmaEsConfig {
    fn default() -> Self {
        CmaEsConfig {
            population_size: 40,
            elite_fraction: 0.5,
            initial_sigma: 0.3,
            variance_learning_rate: 0.3,
        }
    }
}

/// The separable CMA-ES optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct CmaEs {
    config: CmaEsConfig,
}

impl CmaEs {
    /// Creates CMA-ES with the default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates CMA-ES with explicit hyper-parameters.
    pub fn with_config(config: CmaEsConfig) -> Self {
        CmaEs { config }
    }
}

impl Optimizer for CmaEs {
    fn name(&self) -> &str {
        "CMA"
    }

    fn search(
        &self,
        problem: &dyn MappingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> SearchOutcome {
        assert!(budget > 0, "sampling budget must be non-zero");
        let vp = VectorProblem::new(problem);
        let dims = vp.dims();
        let lambda = self.config.population_size.max(4).min(budget.max(4));
        let mu = ((lambda as f64 * self.config.elite_fraction) as usize).max(1);
        let normal = Normal::new(0.0, 1.0).expect("unit normal");

        let mut history = SearchHistory::new();
        let mut remaining = budget;

        // Mean starts at the centre of the hyper-cube; per-dimension sigma at
        // the configured initial step size.
        let mut mean: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.3..0.7)).collect();
        let mut sigma: Vec<f64> = vec![self.config.initial_sigma; dims];

        while remaining > 0 {
            let this_gen = lambda.min(remaining);
            // Sample the generation serially (deterministic RNG stream),
            // evaluate it as one parallel batch.
            let xs: Vec<Vec<f64>> = (0..this_gen)
                .map(|_| {
                    let mut x: Vec<f64> =
                        (0..dims).map(|d| mean[d] + sigma[d] * normal.sample(rng)).collect();
                    clamp_unit(&mut x);
                    x
                })
                .collect();
            let fits = vp.evaluate_generation(&xs, &mut history);
            let mut samples: Vec<(Vec<f64>, f64)> = xs.into_iter().zip(fits).collect();
            remaining -= this_gen;

            samples.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let elites = &samples[..mu.min(samples.len())];

            // Weighted (rank-linear) mean of the elites.
            let weights: Vec<f64> = (0..elites.len()).map(|r| (elites.len() - r) as f64).collect();
            let wsum: f64 = weights.iter().sum();
            let mut new_mean = vec![0.0; dims];
            for (w, (x, _)) in weights.iter().zip(elites) {
                for d in 0..dims {
                    new_mean[d] += w * x[d] / wsum;
                }
            }

            // Per-dimension variance from the elites around the *old* mean
            // (rank-mu style update), blended with the previous sigma.
            let lr = self.config.variance_learning_rate;
            for d in 0..dims {
                let var: f64 = elites.iter().map(|(x, _)| (x[d] - mean[d]).powi(2)).sum::<f64>()
                    / elites.len() as f64;
                let new_sigma = var.sqrt().max(1e-4);
                sigma[d] = (1.0 - lr) * sigma[d] + lr * new_sigma;
            }
            mean = new_mean;
        }

        SearchOutcome::from_history(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn converges_toward_better_solutions() {
        let p = ToyProblem { jobs: 16, accels: 4 };
        let o = CmaEs::new().search(&p, 1_200, &mut StdRng::seed_from_u64(0));
        let early = o.history.best_curve()[39];
        assert!(o.best_fitness >= early);
        assert!(o.best_fitness > 16.0); // better than the random-guess mean
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = CmaEs::new().search(&p, 123, &mut StdRng::seed_from_u64(3));
        let b = CmaEs::new().search(&p, 123, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.history.num_samples(), 123);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn sigma_shrinks_as_population_concentrates() {
        // Indirect check: on a smooth problem a long run must end with the
        // best-so-far curve flat near its maximum (converged), which only
        // happens if the sampling distribution contracted.
        let p = ToyProblem { jobs: 10, accels: 2 };
        let o = CmaEs::new().search(&p, 2_000, &mut StdRng::seed_from_u64(1));
        let curve = o.history.best_curve();
        let last_quarter = &curve[curve.len() * 3 / 4..];
        let improvement = last_quarter.last().unwrap() - last_quarter.first().unwrap();
        assert!(improvement <= 1.0, "still improving fast at the end: {improvement}");
    }
}
