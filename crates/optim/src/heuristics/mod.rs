//! Manual-heuristic mappers reproduced from prior work.
//!
//! The paper compares against two hand-designed mappers:
//!
//! * **Herald-like** ([`HeraldLike`]) — modelled on Herald's mapper for
//!   *heterogeneous* multi-dataflow accelerators: every job is placed on the
//!   core where its dataflow affinity (no-stall latency) is best, subject to
//!   greedy load balancing.
//! * **AI-MT-like** ([`AiMtLike`]) — modelled on AI-MT's mapper for
//!   *homogeneous* systolic-array accelerators: cores are treated as
//!   identical (round-robin assignment) and memory-intensive jobs are
//!   front-loaded so their weight blocks can be prefetched early.
//!
//! Both produce a single deterministic mapping, so their "search" evaluates
//! exactly one sample regardless of the budget — this is what makes them
//! cheap but inflexible compared to the optimization methods.

mod aimt;
mod herald;

pub use aimt::AiMtLike;
pub use herald::HeraldLike;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Optimizer;
    use magma_m3e::{M3e, Objective};
    use magma_model::{TaskType, WorkloadSpec};
    use magma_platform::{settings, Setting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(task: TaskType, setting: Setting, n: usize) -> M3e {
        let group = WorkloadSpec::single_group(task, n, 0);
        M3e::new(settings::build(setting), group, Objective::Throughput)
    }

    #[test]
    fn both_heuristics_produce_valid_positive_mappings() {
        let p = problem(TaskType::Mix, Setting::S2, 40);
        let mut rng = StdRng::seed_from_u64(0);
        for h in [&HeraldLike::new() as &dyn Optimizer, &AiMtLike::new()] {
            let o = h.search(&p, 10_000, &mut rng);
            assert!(o.best_fitness > 0.0, "{} produced zero throughput", h.name());
            assert_eq!(o.history.num_samples(), 1, "{} is a one-shot mapper", h.name());
        }
    }

    #[test]
    fn herald_beats_aimt_on_heterogeneous_platform() {
        // The paper's key observation: AI-MT-like ignores heterogeneity and
        // collapses on heterogeneous accelerators, while Herald-like holds up.
        let p = problem(TaskType::Mix, Setting::S4, 60);
        let mut rng = StdRng::seed_from_u64(1);
        let herald = HeraldLike::new().search(&p, 1, &mut rng);
        let aimt = AiMtLike::new().search(&p, 1, &mut rng);
        assert!(
            herald.best_fitness > aimt.best_fitness,
            "Herald {} should beat AI-MT {} on S4",
            herald.best_fitness,
            aimt.best_fitness
        );
    }

    #[test]
    fn aimt_is_competitive_on_homogeneous_platform() {
        let p = problem(TaskType::Vision, Setting::S1, 40);
        let mut rng = StdRng::seed_from_u64(2);
        let herald = HeraldLike::new().search(&p, 1, &mut rng);
        let aimt = AiMtLike::new().search(&p, 1, &mut rng);
        // On a homogeneous platform the two manual mappers are in the same
        // ballpark (the paper shows both working "rather well" on S1).
        assert!(aimt.best_fitness > 0.4 * herald.best_fitness);
    }
}
