//! The AI-MT-like manual mapper.

use crate::optimizer::{Optimizer, SessionState};
use crate::session::{CoreDrive, OneShotCore};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;

/// AI-MT-like mapper: designed for *homogeneous* multi-array accelerators.
///
/// AI-MT schedules memory blocks as early as possible so compute can overlap
/// with prefetching, and it treats all sub-arrays as interchangeable. The
/// reproduction follows that spirit:
///
/// * cores are assumed identical — jobs are dealt round-robin across them
///   (balanced *counts*, not balanced latency), which is exactly why this
///   mapper collapses on heterogeneous accelerators (Fig. 9);
/// * within a core, jobs are ordered by descending bandwidth intensity so
///   memory-heavy jobs issue their DRAM traffic first (front-loaded BW, the
///   behaviour contrasted with MAGMA in Fig. 15).
#[derive(Debug, Clone, Copy, Default)]
pub struct AiMtLike;

impl AiMtLike {
    /// Creates the AI-MT-like mapper.
    pub fn new() -> Self {
        AiMtLike
    }

    /// Builds the single deterministic mapping this heuristic proposes.
    pub fn build_mapping(&self, problem: &dyn MappingProblem) -> Mapping {
        let n = problem.num_jobs();
        let m = problem.num_accels();

        // Bandwidth intensity of a job, measured on core 0 (the cores are
        // assumed identical by this heuristic).
        let bw_intensity =
            |j: usize| -> f64 { problem.profile(j, 0).map(|p| p.required_bw_gbps).unwrap_or(1.0) };

        // Order jobs by descending BW intensity, then deal them round-robin.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            bw_intensity(b).partial_cmp(&bw_intensity(a)).unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut accel_sel = vec![0usize; n];
        let mut priority = vec![0.0f64; n];
        for (rank, &job) in order.iter().enumerate() {
            accel_sel[job] = rank % m;
            // Memory-intensive jobs first on every core.
            priority[job] = rank as f64 / n as f64;
        }
        Mapping::new(accel_sel, priority, m)
    }
}

impl Optimizer for AiMtLike {
    fn name(&self) -> &str {
        "AI-MT-like"
    }

    fn open(&self, problem: &dyn MappingProblem, _rng: &mut StdRng) -> Box<dyn SessionState> {
        // The heuristic proposes a single deterministic mapping: its session
        // spends one sample on the first step and reports exhaustion after.
        CoreDrive::new(OneShotCore::new(self.build_mapping(problem))).boxed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn round_robin_balances_job_counts() {
        let p = ToyProblem { jobs: 20, accels: 4 };
        let m = AiMtLike::new().build_mapping(&p);
        let loads = m.load_per_accel();
        assert!(loads.iter().all(|&l| l == 5), "loads = {loads:?}");
    }

    #[test]
    fn one_shot_search() {
        let p = ToyProblem { jobs: 10, accels: 2 };
        let o = AiMtLike::new().search(&p, 10_000, &mut StdRng::seed_from_u64(0));
        assert_eq!(o.history.num_samples(), 1);
        assert!(o.best_fitness > 0.0);
    }
}
