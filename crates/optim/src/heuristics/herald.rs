//! The Herald-like manual mapper.

use crate::optimizer::{Optimizer, SessionState};
use crate::session::{CoreDrive, OneShotCore};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;

/// Herald-like mapper: dataflow-affinity placement with greedy load
/// balancing, tuned (like Herald) for heterogeneous multi-dataflow
/// accelerators running vision-style workloads.
///
/// Placement rule: jobs are considered in descending no-stall-latency order
/// (longest processing time first); each job goes to the core whose
/// *finish time* (current accumulated load + the job's latency on that core)
/// is smallest, which naturally routes each job to a core whose dataflow
/// suits it while keeping the cores balanced. Priorities follow the placement
/// order, so the heavy (often bandwidth-hungry) jobs are front-loaded — the
/// behaviour the paper observes for Herald-like in Fig. 15.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeraldLike;

impl HeraldLike {
    /// Creates the Herald-like mapper.
    pub fn new() -> Self {
        HeraldLike
    }

    /// Builds the single deterministic mapping this heuristic proposes.
    pub fn build_mapping(&self, problem: &dyn MappingProblem) -> Mapping {
        let n = problem.num_jobs();
        let m = problem.num_accels();

        // Sort jobs by their best-case latency, longest first (LPT).
        let mut order: Vec<usize> = (0..n).collect();
        let best_latency = |j: usize| -> f64 {
            (0..m)
                .filter_map(|a| problem.profile(j, a).map(|p| p.no_stall_seconds))
                .fold(f64::INFINITY, f64::min)
        };
        order.sort_by(|&a, &b| {
            best_latency(b).partial_cmp(&best_latency(a)).unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut accel_sel = vec![0usize; n];
        let mut priority = vec![0.0f64; n];
        let mut load = vec![0.0f64; m];

        for (rank, &job) in order.iter().enumerate() {
            // Place on the core minimizing (load + latency-on-that-core),
            // i.e. affinity-aware earliest-finish-time.
            let mut best_accel = 0;
            let mut best_finish = f64::INFINITY;
            for (a, core_load) in load.iter().enumerate() {
                let lat = problem.profile(job, a).map(|p| p.no_stall_seconds).unwrap_or(1.0);
                let finish = core_load + lat;
                if finish < best_finish {
                    best_finish = finish;
                    best_accel = a;
                }
            }
            let lat = problem.profile(job, best_accel).map(|p| p.no_stall_seconds).unwrap_or(1.0);
            load[best_accel] += lat;
            accel_sel[job] = best_accel;
            // Priority = placement rank: heavy jobs first.
            priority[job] = rank as f64 / n as f64;
        }

        Mapping::new(accel_sel, priority, m)
    }
}

impl Optimizer for HeraldLike {
    fn name(&self) -> &str {
        "Herald-like"
    }

    fn open(&self, problem: &dyn MappingProblem, _rng: &mut StdRng) -> Box<dyn SessionState> {
        // The heuristic proposes a single deterministic mapping: its session
        // spends one sample on the first step and reports exhaustion after.
        CoreDrive::new(OneShotCore::new(self.build_mapping(problem))).boxed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn produces_valid_mapping_without_profiles() {
        // ToyProblem returns no profiles; the heuristic must still work.
        let p = ToyProblem { jobs: 12, accels: 3 };
        let m = HeraldLike::new().build_mapping(&p);
        assert_eq!(m.num_jobs(), 12);
        assert!(m.accel_sel().iter().all(|&a| a < 3));
        let o = HeraldLike::new().search(&p, 100, &mut StdRng::seed_from_u64(0));
        assert_eq!(o.history.num_samples(), 1);
    }

    #[test]
    fn without_profiles_it_balances_load_evenly() {
        let p = ToyProblem { jobs: 12, accels: 3 };
        let m = HeraldLike::new().build_mapping(&p);
        let loads = m.load_per_accel();
        assert_eq!(loads.iter().sum::<usize>(), 12);
        assert!(loads.iter().all(|&l| l == 4), "loads = {loads:?}");
    }
}
