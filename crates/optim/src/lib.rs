//! Optimization algorithms for the multi-DNN multi-core mapping problem.
//!
//! Every algorithm implements the [`Optimizer`] trait and searches a
//! [`MappingProblem`](magma_m3e::MappingProblem) under a fixed sampling
//! budget, mirroring Table IV of the paper:
//!
//! | Algorithm | Module | Notes |
//! |---|---|---|
//! | **MAGMA** (this paper) | [`magma_ga`] | GA with domain-aware operators: Mutation, Crossover-gen, Crossover-rg, Crossover-accel |
//! | stdGA | [`stdga`] | standard genetic algorithm (mutation 0.1, crossover 0.1) |
//! | DE | [`de`] | differential evolution (F = 0.8, CR = 0.8) |
//! | CMA-ES | [`cmaes`] | (separable) covariance matrix adaptation evolution strategy |
//! | PSO | [`pso`] | particle swarm optimization (c1 = c2 = 0.8) |
//! | TBPSA | [`tbpsa`] | test-based population-size adaptation evolution strategy |
//! | RL A2C | [`rl`] | advantage actor-critic, 3×128 MLP policy/critic |
//! | RL PPO2 | [`rl`] | proximal policy optimization with clipping, 3×128 MLP |
//! | Random | [`random`] | uniform random search (the "exhaustively sampled" reference of Fig. 10) |
//! | Herald-like | [`heuristics`] | manual mapper tuned for heterogeneous cores |
//! | AI-MT-like | [`heuristics`] | manual mapper tuned for homogeneous cores |
//!
//! Every optimizer evaluates its candidates through the shared batch oracle
//! in [`parallel`] ([`BatchEvaluator::evaluate_batch`]), which fans each
//! generation out over the **persistent work-stealing worker pool** in
//! [`pool`], sized by the `MAGMA_THREADS` knob (workers are spawned lazily
//! once and parked between batches, not re-spawned per generation).
//! Parallelism only changes wall-clock time, never results — the returned
//! fitnesses are bit-identical at every worker count.
//!
//! # Search sessions
//!
//! Every optimizer is driven through a resumable, budget-sliced
//! [`SearchSession`]: [`Optimizer::start`] opens a session and
//! [`SearchSession::step`] evaluates up to a slice's worth of candidates,
//! carrying population / distribution / policy state (and the RNG stream)
//! across slices. [`Optimizer::search`] is a provided method that steps one
//! session to the budget, and stepping at *any* slice sizes is bit-identical
//! to it (locked down by `tests/integration_sessions.rs`) — which is what
//! lets `magma-serve` overlap search slices with accelerator execution.
//!
//! # Paper cross-references
//!
//! | Paper artefact | Here |
//! |---|---|
//! | Section IV-E (MAGMA's genetic operators) | [`magma_ga::OperatorSet`] |
//! | Figs. 8–9 (mapper comparison) | [`all_mappers`] |
//! | Fig. 11 / Fig. 16 (convergence, operator ablation) | [`Optimizer::search`] histories, [`magma_ga::Magma::with_operators`] |
//! | Fig. 12 (bandwidth sweep subset) | [`bw_sweep_mappers`] |
//! | Table V (warm-started initial populations) | [`magma_ga::Magma::with_warm_start`] |
//! | Section V-B (hyper-parameter tuning) | [`hyper`] |
//!
//! # Example
//!
//! ```
//! use magma_m3e::{M3e, Objective};
//! use magma_model::{TaskType, WorkloadSpec};
//! use magma_optim::{magma_ga::Magma, Optimizer};
//! use magma_platform::{settings, Setting};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let group = WorkloadSpec::single_group(TaskType::Mix, 20, 0);
//! let problem = M3e::new(settings::build(Setting::S2), group, Objective::Throughput);
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let outcome = Magma::default().search(&problem, 400, &mut rng);
//! assert!(outcome.best_fitness > 0.0);
//! ```

// `deny` rather than `forbid`: the persistent worker pool (`pool`) is the
// one module allowed to use `unsafe` (type-erased borrowed batches handed to
// `'static` worker threads); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cmaes;
pub mod de;
pub mod heuristics;
pub mod hyper;
pub mod magma_ga;
pub mod optimizer;
pub mod parallel;
#[allow(unsafe_code)]
pub mod pool;
pub mod pso;
pub mod random;
pub mod rl;
mod session;
pub mod stdga;
pub mod tbpsa;
pub mod vector;

pub use heuristics::{AiMtLike, HeraldLike};
pub use magma_ga::{Magma, MagmaConfig, OperatorSet};
pub use optimizer::{Optimizer, SearchOutcome, SearchSession, SessionState, StepReport};
pub use parallel::BatchEvaluator;
pub use random::RandomSearch;

/// Builds every optimizer the paper compares (Table IV), in the order the
/// figures list them: Herald-like, AI-MT-like, PSO, CMA, DE, TBPSA, stdGA,
/// RL A2C, RL PPO2, MAGMA.
pub fn all_mappers() -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(heuristics::HeraldLike::new()),
        Box::new(heuristics::AiMtLike::new()),
        Box::new(pso::Pso::default()),
        Box::new(cmaes::CmaEs::default()),
        Box::new(de::DifferentialEvolution::default()),
        Box::new(tbpsa::Tbpsa::default()),
        Box::new(stdga::StdGa::default()),
        Box::new(rl::a2c::A2c::default()),
        Box::new(rl::ppo::Ppo2::default()),
        Box::new(magma_ga::Magma::default()),
    ]
}

/// Builds the subset of mappers used in the bandwidth-sweep figure (Fig. 12):
/// Herald-like, RL A2C, RL PPO2 and MAGMA.
pub fn bw_sweep_mappers() -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(heuristics::HeraldLike::new()),
        Box::new(rl::a2c::A2c::default()),
        Box::new(rl::ppo::Ppo2::default()),
        Box::new(magma_ga::Magma::default()),
    ]
}
