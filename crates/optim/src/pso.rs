//! Particle Swarm Optimization — the "PSO" baseline of Table IV.
//!
//! The paper configures PSO with weights 0.8 for both the global-best and
//! particle-best attraction terms. The inertia (momentum) is kept below 1 so
//! the swarm contracts; the paper's listed ω = 1.6 would diverge on a bounded
//! space, so we use the conventional 0.6 and document the deviation here.
//! The swarm is updated *synchronously* (all particles move against the
//! previous iteration's global best), so each iteration evaluates as one
//! parallel batch.

use crate::optimizer::{Optimizer, SearchOutcome};
use crate::vector::{clamp_unit, VectorProblem};
use magma_m3e::{MappingProblem, SearchHistory};
use rand::rngs::StdRng;
use rand::Rng;

/// PSO hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsoConfig {
    /// Number of particles.
    pub swarm_size: usize,
    /// Inertia weight ω.
    pub inertia: f64,
    /// Attraction toward the particle's own best (c1, paper: 0.8).
    pub cognitive: f64,
    /// Attraction toward the global best (c2, paper: 0.8).
    pub social: f64,
    /// Maximum absolute velocity per dimension.
    pub max_velocity: f64,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig { swarm_size: 40, inertia: 0.6, cognitive: 0.8, social: 0.8, max_velocity: 0.25 }
    }
}

/// The particle-swarm optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pso {
    config: PsoConfig,
}

impl Pso {
    /// Creates PSO with the default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates PSO with explicit hyper-parameters.
    pub fn with_config(config: PsoConfig) -> Self {
        Pso { config }
    }
}

impl Optimizer for Pso {
    fn name(&self) -> &str {
        "PSO"
    }

    fn search(
        &self,
        problem: &dyn MappingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> SearchOutcome {
        assert!(budget > 0, "sampling budget must be non-zero");
        let vp = VectorProblem::new(problem);
        let dims = vp.dims();
        let n = self.config.swarm_size.max(2).min(budget.max(2));
        let mut history = SearchHistory::new();
        let mut remaining = budget;

        let mut vel: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut pbest: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut pbest_fit: Vec<f64> = Vec::with_capacity(n);
        let mut gbest: Vec<f64> = Vec::new();
        let mut gbest_fit = f64::NEG_INFINITY;

        // Initial swarm: sample positions and velocities serially, evaluate
        // the whole swarm as one batch.
        let mut pos: Vec<Vec<f64>> = Vec::with_capacity(n);
        for _ in 0..n.min(remaining) {
            pos.push(vp.random_point(rng));
            vel.push(
                (0..dims)
                    .map(|_| rng.gen_range(-self.config.max_velocity..self.config.max_velocity))
                    .collect(),
            );
        }
        let fits = vp.evaluate_generation(&pos, &mut history);
        remaining -= pos.len();
        for (x, &f) in pos.iter().zip(&fits) {
            if f > gbest_fit {
                gbest_fit = f;
                gbest = x.clone();
            }
            pbest.push(x.clone());
            pbest_fit.push(f);
        }

        // Synchronous PSO: every particle moves against the global best of
        // the *previous* iteration, so one iteration is one parallel batch
        // and the bests are folded in afterwards in particle order.
        while remaining > 0 && !pos.is_empty() {
            let this_gen = pos.len().min(remaining);
            for i in 0..this_gen {
                for d in 0..dims {
                    let r1 = rng.gen::<f64>();
                    let r2 = rng.gen::<f64>();
                    let v = self.config.inertia * vel[i][d]
                        + self.config.cognitive * r1 * (pbest[i][d] - pos[i][d])
                        + self.config.social * r2 * (gbest[d] - pos[i][d]);
                    vel[i][d] = v.clamp(-self.config.max_velocity, self.config.max_velocity);
                    pos[i][d] += vel[i][d];
                }
                clamp_unit(&mut pos[i]);
            }
            let fits = vp.evaluate_generation(&pos[..this_gen], &mut history);
            remaining -= this_gen;
            for (i, &f) in fits.iter().enumerate() {
                if f > pbest_fit[i] {
                    pbest_fit[i] = f;
                    pbest[i] = pos[i].clone();
                }
                if f > gbest_fit {
                    gbest_fit = f;
                    gbest = pos[i].clone();
                }
            }
        }

        SearchOutcome::from_history(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn swarm_improves_on_initialization() {
        let p = ToyProblem { jobs: 16, accels: 4 };
        let o = Pso::new().search(&p, 1_200, &mut StdRng::seed_from_u64(0));
        let init_best = o.history.best_curve()[39];
        assert!(o.best_fitness >= init_best);
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = Pso::new().search(&p, 250, &mut StdRng::seed_from_u64(9));
        let b = Pso::new().search(&p, 250, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.history.num_samples(), 250);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn works_with_tiny_budget() {
        let p = ToyProblem { jobs: 6, accels: 2 };
        let o = Pso::new().search(&p, 3, &mut StdRng::seed_from_u64(2));
        assert_eq!(o.history.num_samples(), 3);
    }
}
