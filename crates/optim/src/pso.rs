//! Particle Swarm Optimization — the "PSO" baseline of Table IV.
//!
//! The paper configures PSO with weights 0.8 for both the global-best and
//! particle-best attraction terms. The inertia (momentum) is kept below 1 so
//! the swarm contracts; the paper's listed ω = 1.6 would diverge on a bounded
//! space, so we use the conventional 0.6 and document the deviation here.
//! The swarm is updated *synchronously* (all particles move against the
//! previous iteration's global best), so each iteration evaluates as one
//! parallel batch.

use crate::optimizer::{Optimizer, SessionState};
use crate::session::{CoreDrive, SessionCore};
use crate::vector::{clamp_unit, VectorProblem};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;
use rand::Rng;

/// PSO hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsoConfig {
    /// Number of particles.
    pub swarm_size: usize,
    /// Inertia weight ω.
    pub inertia: f64,
    /// Attraction toward the particle's own best (c1, paper: 0.8).
    pub cognitive: f64,
    /// Attraction toward the global best (c2, paper: 0.8).
    pub social: f64,
    /// Maximum absolute velocity per dimension.
    pub max_velocity: f64,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig { swarm_size: 40, inertia: 0.6, cognitive: 0.8, social: 0.8, max_velocity: 0.25 }
    }
}

/// The particle-swarm optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pso {
    config: PsoConfig,
}

impl Pso {
    /// Creates PSO with the default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates PSO with explicit hyper-parameters.
    pub fn with_config(config: PsoConfig) -> Self {
        Pso { config }
    }
}

impl Optimizer for Pso {
    fn name(&self) -> &str {
        "PSO"
    }

    fn open(&self, problem: &dyn MappingProblem, _rng: &mut StdRng) -> Box<dyn SessionState> {
        CoreDrive::new(PsoCore::new(*self, problem)).boxed()
    }
}

/// The incremental synchronous-swarm PSO stepper. Particles are sampled
/// (initial swarm) and moved (later iterations) lazily, one per demanded
/// sample, but the personal/global bests are folded in only at iteration
/// boundaries — so every particle of an iteration still moves against the
/// *previous* iteration's bests, exactly as the one-shot synchronous update
/// did, whatever the slice sizes.
struct PsoCore {
    pso: Pso,
    n: usize,
    pos: Vec<Vec<f64>>,
    vel: Vec<Vec<f64>>,
    pbest: Vec<Vec<f64>>,
    pbest_fit: Vec<f64>,
    gbest: Vec<f64>,
    gbest_fit: f64,
    /// Particles emitted (sampled or moved) in the iteration in flight.
    emitted: usize,
    /// Fitnesses absorbed for the iteration in flight.
    gen_fits: Vec<f64>,
    in_iterations: bool,
}

impl PsoCore {
    fn new(pso: Pso, _problem: &dyn MappingProblem) -> Self {
        // Nominal (budget-independent) swarm size; the one-shot budget clamp
        // only bound runs that ended inside the initial swarm.
        let n = pso.config.swarm_size.max(2);
        PsoCore {
            pso,
            n,
            pos: Vec::new(),
            vel: Vec::new(),
            pbest: Vec::new(),
            pbest_fit: Vec::new(),
            gbest: Vec::new(),
            gbest_fit: f64::NEG_INFINITY,
            emitted: 0,
            gen_fits: Vec::new(),
            in_iterations: false,
        }
    }

    /// Folds the completed iteration's fitnesses into the personal and
    /// global bests, in particle order (the one-shot post-batch fold).
    fn close_iteration(&mut self) {
        let fits = std::mem::take(&mut self.gen_fits);
        if !self.in_iterations {
            for (x, &f) in self.pos.iter().zip(&fits) {
                if f > self.gbest_fit {
                    self.gbest_fit = f;
                    self.gbest = x.clone();
                }
                self.pbest.push(x.clone());
                self.pbest_fit.push(f);
            }
            self.in_iterations = true;
        } else {
            for (i, &f) in fits.iter().enumerate() {
                if f > self.pbest_fit[i] {
                    self.pbest_fit[i] = f;
                    self.pbest[i] = self.pos[i].clone();
                }
                if f > self.gbest_fit {
                    self.gbest_fit = f;
                    self.gbest = self.pos[i].clone();
                }
            }
        }
        self.emitted = 0;
    }

    /// Moves particle `i` against the previous iteration's bests (the exact
    /// per-particle RNG draws of the one-shot loop).
    fn move_particle(&mut self, i: usize, dims: usize, rng: &mut StdRng) {
        let c = &self.pso.config;
        for d in 0..dims {
            let r1 = rng.gen::<f64>();
            let r2 = rng.gen::<f64>();
            let v = c.inertia * self.vel[i][d]
                + c.cognitive * r1 * (self.pbest[i][d] - self.pos[i][d])
                + c.social * r2 * (self.gbest[d] - self.pos[i][d]);
            self.vel[i][d] = v.clamp(-c.max_velocity, c.max_velocity);
            self.pos[i][d] += self.vel[i][d];
        }
        clamp_unit(&mut self.pos[i]);
    }
}

impl SessionCore for PsoCore {
    fn next_wave(
        &mut self,
        want: usize,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping> {
        let vp = VectorProblem::new(problem);
        let dims = vp.dims();
        if self.emitted == self.n {
            self.close_iteration();
        }
        let count = want.min(self.n - self.emitted);
        let mut wave = Vec::with_capacity(count);
        for _ in 0..count {
            let i = self.emitted;
            if !self.in_iterations {
                self.pos.push(vp.random_point(rng));
                self.vel.push(
                    (0..dims)
                        .map(|_| {
                            rng.gen_range(
                                -self.pso.config.max_velocity..self.pso.config.max_velocity,
                            )
                        })
                        .collect(),
                );
            } else {
                self.move_particle(i, dims, rng);
            }
            wave.push(vp.decode(&self.pos[i]));
            self.emitted += 1;
        }
        wave
    }

    fn absorb(&mut self, _wave: Vec<Mapping>, fits: &[f64], _problem: &dyn MappingProblem) {
        self.gen_fits.extend_from_slice(fits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn swarm_improves_on_initialization() {
        let p = ToyProblem { jobs: 16, accels: 4 };
        let o = Pso::new().search(&p, 1_200, &mut StdRng::seed_from_u64(0));
        let init_best = o.history.best_curve()[39];
        assert!(o.best_fitness >= init_best);
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = Pso::new().search(&p, 250, &mut StdRng::seed_from_u64(9));
        let b = Pso::new().search(&p, 250, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.history.num_samples(), 250);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn works_with_tiny_budget() {
        let p = ToyProblem { jobs: 6, accels: 2 };
        let o = Pso::new().search(&p, 3, &mut StdRng::seed_from_u64(2));
        assert_eq!(o.history.num_samples(), 3);
    }
}
