//! The shared plumbing behind every [`SearchSession`]: a driver that turns a
//! per-algorithm *candidate core* into a budget-sliced session.
//!
//! Every optimizer in this crate is, at heart, a loop of "produce the next
//! candidates → evaluate them → fold the fitnesses back into algorithm
//! state". [`SessionCore`] captures exactly that pair of hooks and
//! [`CoreDrive`] drives it: a [`step`](SessionState::step) call asks the
//! core for waves of at most the remaining slice, evaluates each wave
//! through the parallel batch oracle ([`BatchEvaluator::evaluate_batch`]),
//! records every sample in the session's [`SearchHistory`] and hands the
//! results back to the core. `CoreDrive` owns nothing but algorithm state
//! (it implements the detached [`SessionState`]); [`AttachedSession`]
//! zips such a state with the problem/RNG borrows to recover the classic
//! [`SearchSession`] shape.
//!
//! # The slicing invariant
//!
//! Cores must produce candidates **lazily, in a budget-agnostic order**: the
//! k-th candidate a core emits (and every RNG draw behind it) may depend
//! only on the results of candidates `0..k`, never on the slice size or on
//! any total budget. Generation-synchronous cores therefore emit one
//! generation at a time — capped at the slice — and defer the selection /
//! distribution update until the whole generation has been absorbed, which
//! is exactly what the pre-session one-shot implementations did when a
//! budget ran out mid-generation. This is what makes a session stepped at
//! any slice sizes bit-identical (outcome *and* RNG stream) to the one-shot
//! search at the same total.

use crate::optimizer::{SearchOutcome, SearchSession, SessionState, StepReport};
use crate::parallel::BatchEvaluator;
use magma_m3e::{Mapping, MappingProblem, SearchHistory};
use rand::rngs::StdRng;

/// The per-algorithm half of a search session: lazy candidate production and
/// result absorption. See the module docs for the ordering rules cores must
/// follow.
pub(crate) trait SessionCore {
    /// Produces the next wave of at most `want` candidates (`want ≥ 1`). An
    /// empty wave means the core is exhausted and will never produce again.
    /// Every wave previously produced has already been absorbed when this is
    /// called.
    fn next_wave(
        &mut self,
        want: usize,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping>;

    /// Folds one evaluated wave back into algorithm state. `fits[i]` is the
    /// fitness of `wave[i]`, already recorded in the session history.
    fn absorb(&mut self, wave: Vec<Mapping>, fits: &[f64], problem: &dyn MappingProblem);
}

/// The generic owned [`SessionState`] driving a [`SessionCore`]: just the
/// algorithm state and the sample history, with the problem and RNG lent
/// per call.
pub(crate) struct CoreDrive<C: SessionCore> {
    history: SearchHistory,
    core: C,
}

impl<C: SessionCore> CoreDrive<C> {
    /// Wraps a core into an owned session state.
    pub(crate) fn new(core: C) -> Self {
        CoreDrive { history: SearchHistory::new(), core }
    }

    /// Boxes the state behind the object-safe trait.
    pub(crate) fn boxed(self) -> Box<dyn SessionState>
    where
        C: 'static,
    {
        Box::new(self)
    }
}

impl<C: SessionCore> SessionState for CoreDrive<C> {
    fn step(
        &mut self,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
        samples: usize,
    ) -> StepReport {
        let mut spent = 0usize;
        while spent < samples {
            let wave = self.core.next_wave(samples - spent, problem, rng);
            if wave.is_empty() {
                break;
            }
            debug_assert!(wave.len() <= samples - spent, "a wave must fit the slice");
            let fits = problem.evaluate_batch(&wave);
            for (mapping, f) in wave.iter().zip(&fits) {
                self.history.record(mapping, *f);
            }
            spent += wave.len();
            self.core.absorb(wave, &fits, problem);
        }
        StepReport {
            spent,
            total_spent: self.history.num_samples(),
            best_fitness: self.history.best_fitness(),
        }
    }

    fn best(&self) -> Option<(&Mapping, f64)> {
        Some((self.history.best_mapping()?, self.history.best_fitness()?))
    }

    fn spent(&self) -> usize {
        self.history.num_samples()
    }

    fn finish(self: Box<Self>) -> SearchOutcome {
        SearchOutcome::from_history(self.history)
    }
}

/// The borrowing [`SearchSession`] adapter over an owned [`SessionState`]:
/// captures the problem and RNG once so per-step calls need no arguments.
/// This is what [`Optimizer::start`](crate::Optimizer::start) hands out.
pub(crate) struct AttachedSession<'a> {
    problem: &'a dyn MappingProblem,
    rng: &'a mut StdRng,
    state: Box<dyn SessionState>,
}

impl<'a> AttachedSession<'a> {
    /// Zips an owned state with the borrows it must be lent on every step.
    pub(crate) fn new(
        problem: &'a dyn MappingProblem,
        rng: &'a mut StdRng,
        state: Box<dyn SessionState>,
    ) -> Self {
        AttachedSession { problem, rng, state }
    }
}

impl SearchSession for AttachedSession<'_> {
    fn step(&mut self, samples: usize) -> StepReport {
        self.state.step(self.problem, self.rng, samples)
    }

    fn best(&self) -> Option<(&Mapping, f64)> {
        self.state.best()
    }

    fn spent(&self) -> usize {
        self.state.spent()
    }

    fn finish(self: Box<Self>) -> SearchOutcome {
        self.state.finish()
    }
}

/// A core that proposes exactly one deterministic mapping (the manual
/// heuristics): the first wave carries the mapping, every later wave is
/// empty — so driving it to any budget evaluates exactly one sample, as the
/// pre-session heuristics did.
pub(crate) struct OneShotCore {
    pending: Option<Mapping>,
}

impl OneShotCore {
    /// Creates a core holding the heuristic's single proposal.
    pub(crate) fn new(mapping: Mapping) -> Self {
        OneShotCore { pending: Some(mapping) }
    }
}

impl SessionCore for OneShotCore {
    fn next_wave(
        &mut self,
        _want: usize,
        _problem: &dyn MappingProblem,
        _rng: &mut StdRng,
    ) -> Vec<Mapping> {
        self.pending.take().into_iter().collect()
    }

    fn absorb(&mut self, _wave: Vec<Mapping>, _fits: &[f64], _problem: &dyn MappingProblem) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn one_shot_core_spends_exactly_one_sample() {
        let p = ToyProblem { jobs: 6, accels: 2 };
        let mut rng = StdRng::seed_from_u64(0);
        let mapping = Mapping::random(&mut rng, 6, 2);
        let mut session =
            AttachedSession::new(&p, &mut rng, CoreDrive::new(OneShotCore::new(mapping)).boxed());
        let first = session.step(10);
        assert_eq!(first.spent, 1);
        assert_eq!(first.total_spent, 1);
        assert!(first.best_fitness.is_some());
        let second = session.step(10);
        assert_eq!(second.spent, 0, "a one-shot core is exhausted after its sample");
        assert_eq!(session.spent(), 1);
        assert!(session.best().is_some());
        let outcome = Box::new(session).finish();
        assert_eq!(outcome.history.num_samples(), 1);
    }

    #[test]
    fn step_zero_samples_is_a_no_op() {
        let p = ToyProblem { jobs: 4, accels: 2 };
        let mut rng = StdRng::seed_from_u64(1);
        let mapping = Mapping::random(&mut rng, 4, 2);
        let mut state = CoreDrive::new(OneShotCore::new(mapping));
        let report = state.step(&p, &mut rng, 0);
        assert_eq!(report.spent, 0);
        assert_eq!(report.total_spent, 0);
        assert_eq!(report.best_fitness, None);
        assert!(state.best().is_none());
    }
}
