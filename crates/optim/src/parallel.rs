//! Parallel batch evaluation of candidate populations.
//!
//! Every population-based optimizer in this crate spends essentially all of
//! its time inside [`MappingProblem::evaluate`] (decode → bandwidth
//! allocation → schedule), and the candidates of one generation are
//! independent of each other — the classic embarrassingly parallel inner
//! loop of evolutionary search. This module provides the one batch oracle
//! they all share:
//!
//! * [`BatchEvaluator::evaluate_batch`] — evaluates a slice of mappings and
//!   returns their fitnesses **in input order**. A blanket implementation
//!   covers every [`MappingProblem`] (including trait objects), so optimizer
//!   code simply calls `problem.evaluate_batch(&children)`.
//! * [`evaluate_batch_with`] — the same, with an explicit worker count.
//!
//! Parallel batches run on the **persistent work-stealing pool** in
//! [`crate::pool`]: worker threads are spawned lazily once and parked
//! between batches, the batch is split into contiguous chunks that the
//! caller and the workers steal from a shared cursor, and each chunk writes
//! into its position-indexed slice of the output buffer. Which thread
//! evaluates a chunk is scheduling noise; where each fitness lands is a pure
//! function of its index — so there is **no reduction-order
//! nondeterminism**: the returned vector is bit-identical for every worker
//! count, which the determinism suites (`tests/integration_parallel.rs`,
//! `tests/integration_pool.rs`) lock down for every optimizer. A thread
//! already inside a pool chunk evaluates nested batches serially ("pool
//! inside pool" degrades instead of deadlocking).
//!
//! # Thread-count resolution
//!
//! The worker count comes from, in order:
//!
//! 1. an active [`with_threads`] override on the calling thread (used by the
//!    determinism tests and the perf harness, which must pin the count
//!    without touching the process environment), then
//! 2. the `MAGMA_THREADS` environment knob via
//!    [`magma_platform::settings::magma_threads`], defaulting to the
//!    machine's available parallelism.
//!
//! Batches with fewer than two mappings, and worker counts of one, evaluate
//! serially on the calling thread with zero overhead.

use magma_m3e::{Mapping, MappingProblem};
use std::cell::Cell;

thread_local! {
    /// Per-thread worker-count override (see [`with_threads`]). Thread-local
    /// rather than global so concurrently running tests cannot race each
    /// other, and rather than an environment write so the unsoundness of
    /// `std::env::set_var` in threaded programs is never needed.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with the batch-evaluation worker count pinned to `threads` on
/// the current thread (nested calls shadow outer ones; the previous value is
/// restored afterwards, also on panic).
///
/// A `threads` of zero is treated as one. Worker threads spawned *inside*
/// the pool never re-enter the pool, so the override does not need to
/// propagate to them.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1)))));
    f()
}

/// The worker count batch evaluation will use on the current thread: the
/// innermost [`with_threads`] override if one is active, otherwise the
/// `MAGMA_THREADS` environment knob
/// ([`magma_platform::settings::magma_threads`]). Always ≥ 1.
pub fn thread_count() -> usize {
    THREAD_OVERRIDE.with(Cell::get).unwrap_or_else(magma_platform::settings::magma_threads).max(1)
}

/// Batch fitness oracle: the parallel counterpart of
/// [`MappingProblem::evaluate`].
///
/// Implemented for every [`MappingProblem`] (sized or trait object) by a
/// blanket impl, so it is *the* way optimizers evaluate a generation:
/// serial-vs-parallel becomes a pure deployment knob (`MAGMA_THREADS`)
/// instead of an algorithm property.
pub trait BatchEvaluator {
    /// Evaluates every mapping in `mappings` and returns the fitnesses in
    /// input order. Must equal `mappings.iter().map(|m| self.evaluate(m))`
    /// exactly (bit-for-bit), for every worker count.
    fn evaluate_batch(&self, mappings: &[Mapping]) -> Vec<f64>;
}

impl<P: MappingProblem + ?Sized> BatchEvaluator for P {
    fn evaluate_batch(&self, mappings: &[Mapping]) -> Vec<f64> {
        evaluate_batch_with(self, mappings, thread_count())
    }
}

/// Evaluates `mappings` with an explicit worker count, returning fitnesses
/// in input order (the perf harness measures this function at 1..N threads;
/// everything else should go through [`BatchEvaluator::evaluate_batch`]).
///
/// Counts of one, batches of fewer than two mappings, and calls from inside
/// a pool chunk (nested batches) evaluate serially on the calling thread;
/// everything else runs on the persistent pool (see [`crate::pool`]),
/// which is rebuilt first if the resolved count changed.
pub fn evaluate_batch_with<P: MappingProblem + ?Sized>(
    problem: &P,
    mappings: &[Mapping],
    threads: usize,
) -> Vec<f64> {
    if threads <= 1 || mappings.len() < 2 || crate::pool::on_pool_thread() {
        return mappings.iter().map(|m| problem.evaluate(m)).collect();
    }
    let mut out = vec![0.0f64; mappings.len()];
    crate::pool::submit(problem, mappings, &mut out, threads);
    out
}

/// A short stable tag describing how parallel batches are executed, stamped
/// into the `magma-perf/v2` report (`pool_mode`) so every committed
/// `BENCH_parallel_eval.json` names the machinery that produced it. Changes
/// when (and only when) the execution strategy changes: PR 3's per-batch
/// `thread::scope` would have reported `scoped-spawn`.
pub fn pool_mode() -> &'static str {
    "persistent-work-stealing"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use magma_m3e::{M3e, Objective};
    use magma_model::{TaskType, WorkloadSpec};
    use magma_platform::{settings, Setting};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_population(n: usize, accels: usize, count: usize, seed: u64) -> Vec<Mapping> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| Mapping::random(&mut rng, n, accels)).collect()
    }

    #[test]
    fn batch_matches_serial_on_toy_problem() {
        let p = ToyProblem { jobs: 14, accels: 3 };
        let pop = random_population(14, 3, 37, 0);
        let serial: Vec<f64> = pop.iter().map(|m| p.evaluate(m)).collect();
        for threads in [1, 2, 3, 4, 7, 64] {
            let batch = evaluate_batch_with(&p, &pop, threads);
            assert_eq!(batch, serial, "threads = {threads}");
        }
    }

    #[test]
    fn works_through_a_trait_object() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let dynamic: &dyn magma_m3e::MappingProblem = &p;
        let pop = random_population(8, 2, 5, 1);
        let serial: Vec<f64> = pop.iter().map(|m| p.evaluate(m)).collect();
        assert_eq!(dynamic.evaluate_batch(&pop), serial);
        assert_eq!(evaluate_batch_with(dynamic, &pop, 4), serial);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let p = ToyProblem { jobs: 6, accels: 2 };
        assert!(evaluate_batch_with(&p, &[], 8).is_empty());
        let pop = random_population(6, 2, 1, 2);
        assert_eq!(evaluate_batch_with(&p, &pop, 8), vec![p.evaluate(&pop[0])]);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let ambient = thread_count();
        with_threads(3, || {
            assert_eq!(thread_count(), 3);
            with_threads(1, || assert_eq!(thread_count(), 1));
            assert_eq!(thread_count(), 3);
        });
        assert_eq!(thread_count(), ambient);
        // Zero is clamped rather than disabling evaluation.
        with_threads(0, || assert_eq!(thread_count(), 1));
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let ambient = thread_count();
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(thread_count(), ambient);
    }

    // Batch evaluation must be indistinguishable from the serial oracle on
    // the real M3E problem, for every objective. The population generator
    // mirrors PR 2's genes-in-range strategy: sizes/seeds are drawn by
    // proptest, genes by `Mapping::random` (always in range by
    // construction). Cases are few because each builds a full M3e instance.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn batch_matches_serial_for_every_objective_on_m3e(
            jobs in 1usize..10,
            pop in 1usize..24,
            threads in 1usize..6,
            seed in 0u64..1000,
            objective_sel in 0usize..4,
        ) {
            let objective = [
                Objective::Throughput,
                Objective::Latency,
                Objective::Energy,
                Objective::EnergyDelayProduct,
            ][objective_sel];
            let group = WorkloadSpec::single_group(TaskType::Mix, jobs, seed);
            let problem = M3e::new(settings::build(Setting::S2), group, objective);
            let mappings = random_population(jobs, 4, pop, seed);
            let serial: Vec<f64> = mappings.iter().map(|m| problem.evaluate(m)).collect();
            let batch = evaluate_batch_with(&problem, &mappings, threads);
            prop_assert_eq!(batch.len(), serial.len());
            for (b, s) in batch.iter().zip(&serial) {
                // Bit-identical, not approximately equal: parallelism must
                // not change results at all.
                prop_assert_eq!(b.to_bits(), s.to_bits());
            }
        }

        // Arbitrary in-range genomes (not just `Mapping::random` outputs)
        // agree too, on the cheap toy problem with many cases.
        #[test]
        fn batch_matches_serial_for_arbitrary_genes(
            genes in proptest::collection::vec(
                (proptest::collection::vec(0usize..3, 1..20),
                 proptest::collection::vec(0.0f64..1.0, 1..20)),
                1..30,
            ),
            threads in 1usize..9,
        ) {
            let jobs = genes.iter().map(|(a, p)| a.len().min(p.len())).min().unwrap();
            let pop: Vec<Mapping> = genes
                .into_iter()
                .map(|(a, p)| Mapping::new(a[..jobs].to_vec(), p[..jobs].to_vec(), 3))
                .collect();
            let problem = ToyProblem { jobs, accels: 3 };
            let serial: Vec<f64> = pop.iter().map(|m| problem.evaluate(m)).collect();
            prop_assert_eq!(evaluate_batch_with(&problem, &pop, threads), serial);
        }
    }
}
