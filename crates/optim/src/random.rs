//! Uniform random search.
//!
//! Used both as a sanity baseline and as the "exhaustively sampled"
//! best-effort reference of Fig. 10 (the paper runs ~1 M random samples to
//! approximate the achievable optimum of a problem instance).

use crate::optimizer::{Optimizer, SessionState};
use crate::session::{CoreDrive, SessionCore};
use magma_m3e::{Mapping, MappingProblem};
use rand::rngs::StdRng;

/// Samples are drawn and evaluated in batches of this size, bounding the
/// memory held in flight when the budget is large (Fig. 10 uses ~1 M
/// samples) while still giving the worker pool full generations to chew on.
const BATCH: usize = 1024;

/// Uniform random sampling of the mapping space.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl RandomSearch {
    /// Creates a random-search optimizer.
    pub fn new() -> Self {
        RandomSearch
    }
}

impl Optimizer for RandomSearch {
    fn name(&self) -> &str {
        "Random"
    }

    fn open(&self, _problem: &dyn MappingProblem, _rng: &mut StdRng) -> Box<dyn SessionState> {
        CoreDrive::new(RandomCore).boxed()
    }
}

/// The incremental random-search stepper: memoryless, so each wave is
/// simply up to `BATCH` fresh uniform mappings capped at the slice.
struct RandomCore;

impl SessionCore for RandomCore {
    fn next_wave(
        &mut self,
        want: usize,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
    ) -> Vec<Mapping> {
        (0..want.min(BATCH))
            .map(|_| Mapping::random(rng, problem.num_jobs(), problem.num_accels()))
            .collect()
    }

    fn absorb(&mut self, _wave: Vec<Mapping>, _fits: &[f64], _problem: &dyn MappingProblem) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use rand::SeedableRng;

    #[test]
    fn uses_exactly_the_budget() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let o = RandomSearch::new().search(&p, 50, &mut StdRng::seed_from_u64(0));
        assert_eq!(o.history.num_samples(), 50);
        assert!(o.best_fitness > 0.0);
    }

    #[test]
    fn more_budget_never_hurts() {
        let p = ToyProblem { jobs: 16, accels: 4 };
        let small = RandomSearch::new().search(&p, 20, &mut StdRng::seed_from_u64(1));
        let large = RandomSearch::new().search(&p, 500, &mut StdRng::seed_from_u64(1));
        assert!(large.best_fitness >= small.best_fitness);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = ToyProblem { jobs: 8, accels: 2 };
        let a = RandomSearch::new().search(&p, 40, &mut StdRng::seed_from_u64(9));
        let b = RandomSearch::new().search(&p, 40, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.best_fitness, b.best_fitness);
    }
}
