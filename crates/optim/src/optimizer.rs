//! The common interface all mapping optimizers implement: resumable
//! [`SearchSession`]s started by [`Optimizer::start`], with the classic
//! one-shot [`Optimizer::search`] kept as a provided method on top.
//!
//! Since the fleet-scheduler redesign the *required* entry point is
//! [`Optimizer::open`], which returns an **owned** [`SessionState`]: all
//! algorithm state, no borrows. `start` wraps it back into the borrowing
//! [`SearchSession`] for callers that drive one search at a time, so both
//! entry points are bit-identical by construction.

use crate::session::AttachedSession;
use magma_m3e::{Mapping, MappingProblem, SearchHistory};
use rand::rngs::StdRng;

/// The result of one optimization run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best mapping found within the budget.
    pub best_mapping: Mapping,
    /// Its fitness (higher is better; GFLOP/s for the throughput objective).
    pub best_fitness: f64,
    /// Per-sample history (used for convergence curves and sample-efficiency
    /// analysis).
    pub history: SearchHistory,
}

impl SearchOutcome {
    /// Builds an outcome from a completed history.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty (an optimizer must evaluate at least
    /// one sample).
    pub fn from_history(history: SearchHistory) -> Self {
        let best_mapping = history
            .best_mapping()
            .expect("an optimizer must evaluate at least one mapping")
            .clone();
        let best_fitness = history.best_fitness().unwrap();
        SearchOutcome { best_mapping, best_fitness, history }
    }
}

/// The accounting block returned by every [`SearchSession::step`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Samples actually evaluated by this step (may be less than requested
    /// when the optimizer is exhausted, e.g. a one-shot heuristic; zero
    /// strictly means "stepping further will never evaluate anything").
    pub spent: usize,
    /// Samples evaluated by the session so far, including this step.
    pub total_spent: usize,
    /// Best fitness seen so far, `None` only while nothing was evaluated.
    pub best_fitness: Option<f64>,
}

/// The owned half of a resumable search: every piece of algorithm state
/// (population, distribution, policy, history) and **no borrows**.
///
/// Where [`SearchSession`] borrows the problem and the RNG for its whole
/// lifetime — fine for one search at a time, impossible for a scheduler
/// that must hold *many* live searches — a `SessionState` is `'static`
/// and is lent the problem and RNG afresh on every call. The
/// fleet-serving scheduler (`magma-serve`) owns one `Box<dyn
/// SessionState>` per in-flight dispatch group and interleaves their
/// slices under a deadline policy.
///
/// The slicing invariant of [`SearchSession`] carries over verbatim:
/// stepping in any slice sizes is bit-identical (outcome *and* RNG
/// stream) to a one-shot [`Optimizer::search`] at the same total budget,
/// **provided each call passes the same problem and RNG** the session was
/// opened with. Lending a different problem or RNG mid-session is a logic
/// error (not UB, but the result is meaningless).
pub trait SessionState {
    /// Evaluates **up to** `samples` further candidates against `problem`,
    /// drawing randomness from `rng`. Semantics match
    /// [`SearchSession::step`]: `spent == 0` means exhausted.
    fn step(
        &mut self,
        problem: &dyn MappingProblem,
        rng: &mut StdRng,
        samples: usize,
    ) -> StepReport;

    /// The best mapping and fitness found so far, `None` until the first
    /// sample was evaluated.
    fn best(&self) -> Option<(&Mapping, f64)>;

    /// Samples evaluated so far across all steps.
    fn spent(&self) -> usize;

    /// Consumes the state and returns the outcome of everything evaluated
    /// so far — including an **early finish** before the nominal budget is
    /// exhausted (the preemption path of the fleet scheduler).
    ///
    /// # Panics
    ///
    /// Panics if no sample was evaluated yet (an outcome needs at least one
    /// mapping); preempting callers must step a session at least once
    /// before finishing it.
    fn finish(self: Box<Self>) -> SearchOutcome;
}

/// A resumable, budget-sliced search in progress.
///
/// A session is created by [`Optimizer::start`] and advanced by calling
/// [`step`](SearchSession::step) with a slice of the sampling budget; it
/// carries the optimizer's full state (population, distribution, policy —
/// and the borrowed RNG) across slices. The hard invariant every
/// implementation upholds (and `tests/integration_sessions.rs` locks down):
/// **stepping in any slice sizes produces exactly the [`SearchOutcome`] of
/// a one-shot [`Optimizer::search`] at the same total budget** — the same
/// evaluated candidates in the same order, bit-identical fitnesses, and the
/// same RNG stream. This is what lets a serving layer interleave search
/// slices with accelerator execution (overlap mode in `magma-serve`), meter
/// real per-step mapper cost, and preempt a search under deadline pressure
/// without changing any result.
pub trait SearchSession {
    /// Evaluates **up to** `samples` further candidates and returns the
    /// accounting for this slice. A report with `spent == 0` means the
    /// optimizer is exhausted (it will never evaluate more, e.g. a one-shot
    /// heuristic after its single sample); callers driving a session to a
    /// budget must treat it as a stop signal.
    fn step(&mut self, samples: usize) -> StepReport;

    /// The best mapping and fitness found so far, `None` until the first
    /// sample was evaluated.
    fn best(&self) -> Option<(&Mapping, f64)>;

    /// Samples evaluated so far across all steps.
    fn spent(&self) -> usize;

    /// Consumes the session and returns the outcome of everything evaluated
    /// so far.
    ///
    /// # Panics
    ///
    /// Panics if no sample was evaluated yet (an outcome needs at least one
    /// mapping).
    fn finish(self: Box<Self>) -> SearchOutcome;
}

/// A mapping optimizer: given a black-box [`MappingProblem`] and a sampling
/// budget, find the best mapping it can.
///
/// Implementations must be deterministic given the same `rng` seed so the
/// paper's experiments are reproducible. The required method is
/// [`open`](Optimizer::open), which returns an owned [`SessionState`];
/// the borrowing [`start`](Optimizer::start) and the classic one-shot
/// [`search`](Optimizer::search) are provided methods layered on top, so
/// all three entry points produce bit-identical outcomes by construction.
pub trait Optimizer {
    /// Human-readable name used in result tables (matches Table IV labels).
    fn name(&self) -> &str;

    /// Opens an owned, resumable search state on `problem`. `rng` is
    /// borrowed only for the duration of this call (some algorithms draw
    /// their initial distribution here); no candidate is evaluated until
    /// the first [`SessionState::step`] call, which must be lent the same
    /// problem and RNG.
    fn open(&self, problem: &dyn MappingProblem, rng: &mut StdRng) -> Box<dyn SessionState>;

    /// Opens a resumable search session on `problem`, borrowing `rng` for
    /// the session's lifetime. No candidate is evaluated until the first
    /// [`SearchSession::step`] call.
    ///
    /// Provided method: wraps [`open`](Optimizer::open)'s owned state
    /// together with the borrows, so `start` and `open` are bit-identical.
    fn start<'a>(
        &self,
        problem: &'a dyn MappingProblem,
        rng: &'a mut StdRng,
    ) -> Box<dyn SearchSession + 'a> {
        let state = self.open(problem, rng);
        Box::new(AttachedSession::new(problem, rng, state))
    }

    /// Runs the search, evaluating at most `budget` candidate mappings.
    ///
    /// Provided method: loops [`SearchSession::step`] over one session until
    /// the budget is spent or the optimizer is exhausted. Migration note:
    /// before the session redesign this was the required method; existing
    /// callers compile unchanged and receive bit-identical outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    fn search(
        &self,
        problem: &dyn MappingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> SearchOutcome {
        assert!(budget > 0, "sampling budget must be non-zero");
        let mut session = self.start(problem, rng);
        loop {
            let remaining = budget - session.spent();
            if remaining == 0 {
                break;
            }
            if session.step(remaining).spent == 0 {
                break;
            }
        }
        session.finish()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A cheap synthetic problem shared by the optimizer unit tests: fitness
    //! rewards assigning job `i` to accelerator `i % m` and ordering jobs by
    //! index. It has a known unique optimum, is smooth enough for every
    //! optimizer family to make progress on, and costs nothing to evaluate.

    use magma_m3e::{Mapping, MappingProblem};
    use magma_model::TaskType;

    pub struct ToyProblem {
        pub jobs: usize,
        pub accels: usize,
    }

    impl MappingProblem for ToyProblem {
        fn num_jobs(&self) -> usize {
            self.jobs
        }

        fn num_accels(&self) -> usize {
            self.accels
        }

        fn evaluate(&self, mapping: &Mapping) -> f64 {
            let mut score = 0.0;
            for (i, &a) in mapping.accel_sel().iter().enumerate() {
                if a == i % self.accels {
                    score += 1.0;
                }
            }
            // Reward priorities that are increasing with the job index.
            for w in 0..mapping.num_jobs() - 1 {
                if mapping.priority()[w] <= mapping.priority()[w + 1] {
                    score += 0.5;
                }
            }
            score
        }

        fn task_type(&self) -> Option<TaskType> {
            Some(TaskType::Mix)
        }
    }

    /// The maximum achievable fitness of [`ToyProblem`].
    pub fn toy_optimum(jobs: usize) -> f64 {
        jobs as f64 + 0.5 * (jobs - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_m3e::SearchHistory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outcome_from_history_takes_best() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut h = SearchHistory::new();
        let a = Mapping::random(&mut rng, 4, 2);
        let b = Mapping::random(&mut rng, 4, 2);
        h.record(&a, 1.0);
        h.record(&b, 3.0);
        let o = SearchOutcome::from_history(h);
        assert_eq!(o.best_fitness, 3.0);
        assert_eq!(o.best_mapping, b);
        assert_eq!(o.history.num_samples(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one mapping")]
    fn empty_history_panics() {
        let _ = SearchOutcome::from_history(SearchHistory::new());
    }
}
