//! The common interface all mapping optimizers implement.

use magma_m3e::{Mapping, MappingProblem, SearchHistory};
use rand::rngs::StdRng;

/// The result of one optimization run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best mapping found within the budget.
    pub best_mapping: Mapping,
    /// Its fitness (higher is better; GFLOP/s for the throughput objective).
    pub best_fitness: f64,
    /// Per-sample history (used for convergence curves and sample-efficiency
    /// analysis).
    pub history: SearchHistory,
}

impl SearchOutcome {
    /// Builds an outcome from a completed history.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty (an optimizer must evaluate at least
    /// one sample).
    pub fn from_history(history: SearchHistory) -> Self {
        let best_mapping = history
            .best_mapping()
            .expect("an optimizer must evaluate at least one mapping")
            .clone();
        let best_fitness = history.best_fitness().unwrap();
        SearchOutcome { best_mapping, best_fitness, history }
    }
}

/// A mapping optimizer: given a black-box [`MappingProblem`] and a sampling
/// budget, find the best mapping it can.
///
/// Implementations must be deterministic given the same `rng` seed so the
/// paper's experiments are reproducible.
pub trait Optimizer {
    /// Human-readable name used in result tables (matches Table IV labels).
    fn name(&self) -> &str;

    /// Runs the search, evaluating at most `budget` candidate mappings.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `budget == 0`.
    fn search(
        &self,
        problem: &dyn MappingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> SearchOutcome;
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A cheap synthetic problem shared by the optimizer unit tests: fitness
    //! rewards assigning job `i` to accelerator `i % m` and ordering jobs by
    //! index. It has a known unique optimum, is smooth enough for every
    //! optimizer family to make progress on, and costs nothing to evaluate.

    use magma_m3e::{Mapping, MappingProblem};
    use magma_model::TaskType;

    pub struct ToyProblem {
        pub jobs: usize,
        pub accels: usize,
    }

    impl MappingProblem for ToyProblem {
        fn num_jobs(&self) -> usize {
            self.jobs
        }

        fn num_accels(&self) -> usize {
            self.accels
        }

        fn evaluate(&self, mapping: &Mapping) -> f64 {
            let mut score = 0.0;
            for (i, &a) in mapping.accel_sel().iter().enumerate() {
                if a == i % self.accels {
                    score += 1.0;
                }
            }
            // Reward priorities that are increasing with the job index.
            for w in 0..mapping.num_jobs() - 1 {
                if mapping.priority()[w] <= mapping.priority()[w + 1] {
                    score += 0.5;
                }
            }
            score
        }

        fn task_type(&self) -> Option<TaskType> {
            Some(TaskType::Mix)
        }
    }

    /// The maximum achievable fitness of [`ToyProblem`].
    pub fn toy_optimum(jobs: usize) -> f64 {
        jobs as f64 + 0.5 * (jobs - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_m3e::SearchHistory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outcome_from_history_takes_best() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut h = SearchHistory::new();
        let a = Mapping::random(&mut rng, 4, 2);
        let b = Mapping::random(&mut rng, 4, 2);
        h.record(&a, 1.0);
        h.record(&b, 3.0);
        let o = SearchOutcome::from_history(h);
        assert_eq!(o.best_fitness, 3.0);
        assert_eq!(o.best_mapping, b);
        assert_eq!(o.history.num_samples(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one mapping")]
    fn empty_history_panics() {
        let _ = SearchOutcome::from_history(SearchHistory::new());
    }
}
