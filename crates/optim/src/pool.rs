//! The persistent work-stealing worker pool behind batch evaluation.
//!
//! PR 3's batch oracle spawned a fresh `std::thread::scope` per generation;
//! at figure-scale batch times (~5 ms) the spawn/join cost ate the entire
//! parallel win (the committed `BENCH_parallel_eval.json` recorded
//! `speedup_vs_serial < 1.0` at 2 and 4 threads). This module replaces the
//! per-batch scope with **one process-wide pool of parked worker threads**
//! that persists across batches, generations, sessions and serve requests:
//!
//! * **Lazy initialization** — no thread is spawned until the first parallel
//!   batch; serial runs (`MAGMA_THREADS=1`, singleton batches) never touch
//!   the pool.
//! * **Work stealing over contiguous chunks** — a batch is split into fixed
//!   contiguous chunks and published once; the caller and every worker
//!   *steal* the next unclaimed chunk from a shared atomic cursor, so load
//!   imbalance between chunks (heterogeneous mappings decode to schedules of
//!   very different event counts) self-corrects without any rebalancing
//!   protocol.
//! * **Position-indexed slots** — chunk `[start, end)` writes fitnesses into
//!   output slots `[start, end)` and nowhere else. Which thread evaluates a
//!   chunk is scheduling noise; *where the result lands* is a pure function
//!   of the mapping's index. Reduction order — and therefore every
//!   `SearchOutcome` the determinism suites lock — is bit-identical at every
//!   worker count.
//! * **Clean rebuild on resize** — the pool is sized to the resolved worker
//!   count (`MAGMA_THREADS` or a [`with_threads`](crate::parallel::with_threads)
//!   override) minus one, because the caller always participates. When the
//!   resolved count changes, the old workers are shut down and joined before
//!   the replacement pool spawns; [`stats`] exposes the current size and the
//!   rebuild/batch counters so tests can observe exactly this lifecycle.
//! * **Re-entrancy instead of deadlock** — a thread that is already
//!   executing a chunk (worker *or* participating caller) evaluates any
//!   nested batch serially ([`on_pool_thread`]), so a problem whose
//!   `evaluate` itself fans out ("pool inside pool") degrades to serial
//!   nesting instead of deadlocking on the pool mutex.
//!
//! # Safety
//!
//! This is the one module in the crate that uses `unsafe`. A batch borrows
//! the caller's stack (the problem, the mapping slice and the output
//! buffer), but persistent workers are `'static`, so the borrow is
//! type-erased into a raw context pointer (`Batch::ctx`). The invariants
//! that make this sound are local and enforced by construction:
//!
//! 1. The context outlives every access: `submit` does not return (and
//!    therefore the context's stack frame does not die) until every chunk of
//!    the batch has completed — including when a chunk panics, and including
//!    when the panic is on the caller's own chunk (chunk bodies are caught
//!    and re-thrown after the completion barrier).
//! 2. Writes through the output pointer are disjoint: chunk claiming hands
//!    out non-overlapping index ranges exactly once (an atomic
//!    `fetch_add`), and slot `i` is written only by the chunk owning `i`.
//! 3. Cross-thread visibility: the batch is published under a mutex
//!    (happens-before the workers' reads of the context) and completion is
//!    signalled under a mutex after an `AcqRel` countdown (the caller's
//!    reads of the output happen-after every worker's writes).
//! 4. The problem reference is `&P where P: MappingProblem + ?Sized`, and
//!    `MappingProblem: Sync`, so sharing it across workers is the same
//!    contract the scoped implementation relied on.

use magma_m3e::{Mapping, MappingProblem};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

thread_local! {
    /// Set while the current thread is executing a chunk of a pool batch
    /// (worker threads and the participating caller alike). Nested batch
    /// evaluations check it and run serially (see [`on_pool_thread`]).
    static ON_POOL_THREAD: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is inside a pool chunk right now. The batch
/// oracle ([`crate::parallel::evaluate_batch_with`]) consults this to route
/// nested evaluations ("pool inside pool") to the serial path instead of
/// deadlocking on the pool's submission lock.
pub fn on_pool_thread() -> bool {
    ON_POOL_THREAD.with(Cell::get)
}

/// Type-erased chunk executor: `(ctx, start, end)` evaluates mappings
/// `start..end` of the batch behind `ctx` into output slots `start..end`.
type ChunkFn = unsafe fn(*const (), usize, usize);

/// One published batch: the unit of work the caller and the workers steal
/// chunks from. Lives in an `Arc` so late-waking workers can still observe
/// an exhausted cursor after the caller has moved on.
struct Batch {
    /// Type-erased pointer to the caller-stack [`Ctx`]. Valid until the
    /// completion barrier releases the caller (safety invariant 1).
    ctx: *const (),
    /// Monomorphized executor for the concrete problem type behind `ctx`.
    run: ChunkFn,
    /// Number of mappings in the batch.
    len: usize,
    /// Chunk granularity in mappings (the last chunk may be shorter).
    chunk: usize,
    /// Next unclaimed start index; claiming is `fetch_add(chunk)`.
    cursor: AtomicUsize,
    /// Chunks not yet completed; the thread that takes it to zero signals
    /// `done`.
    pending: AtomicUsize,
    /// First panic payload thrown by any chunk, re-thrown by the caller
    /// after the barrier.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion barrier the caller blocks on.
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `ctx` crosses threads by design. The pointee is kept alive and
// data-race free by the batch protocol documented on the module (invariants
// 1–4); `Batch`'s own shared fields are atomics or mutex-guarded.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims and executes chunks until the cursor is exhausted. Called by
    /// every worker that observes the batch and by the submitting caller.
    fn work(&self) {
        // Mark the thread for nested-batch re-entrancy detection, restoring
        // the previous value on exit (the caller participates from a thread
        // that is otherwise *not* a pool thread).
        struct Flag(bool);
        impl Drop for Flag {
            fn drop(&mut self) {
                ON_POOL_THREAD.with(|c| c.set(self.0));
            }
        }
        let _flag = Flag(ON_POOL_THREAD.with(|c| c.replace(true)));

        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.len {
                return;
            }
            let end = (start + self.chunk).min(self.len);
            // A panicking evaluation must not leave the barrier hanging:
            // catch, record, count the chunk as completed, and let the
            // caller re-throw after the batch drains.
            // SAFETY: `start..end` was claimed exactly once, so the chunk's
            // slot writes are disjoint from every other chunk's; `ctx` is
            // alive because the caller is still blocked on the barrier.
            let result =
                catch_unwind(AssertUnwindSafe(|| unsafe { (self.run)(self.ctx, start, end) }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
                slot.get_or_insert(payload);
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().unwrap_or_else(PoisonError::into_inner) = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until every chunk has completed.
    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = self.done_cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The borrowed world of one batch, type-erased behind [`Batch::ctx`].
struct Ctx<'a, P: ?Sized> {
    problem: &'a P,
    mappings: &'a [Mapping],
    /// Raw base pointer of the output buffer; chunk `[s, e)` writes slots
    /// `[s, e)` only.
    out: *mut f64,
}

/// The monomorphized chunk body: evaluates `mappings[start..end]` into
/// output slots `start..end`.
///
/// # Safety
///
/// `ctx` must point to a live `Ctx<'_, P>` whose buffers cover `end`
/// elements, and `start..end` must be a chunk range claimed exactly once
/// (disjoint writes).
unsafe fn run_chunk<P: MappingProblem + ?Sized>(ctx: *const (), start: usize, end: usize) {
    let ctx = &*(ctx as *const Ctx<'_, P>);
    for i in start..end {
        *ctx.out.add(i) = ctx.problem.evaluate(&ctx.mappings[i]);
    }
}

/// Coordination state shared between the submitting caller and the workers.
struct PoolShared {
    gate: Mutex<Gate>,
    gate_cv: Condvar,
}

struct Gate {
    /// The batch currently open for stealing, if any.
    batch: Option<Arc<Batch>>,
    /// Bumped on every publication so parked workers can tell a new batch
    /// from a spurious wakeup.
    epoch: u64,
    /// Set (with an epoch bump) when the pool is being torn down.
    shutdown: bool,
}

/// A persistent pool of parked worker threads, sized at construction.
struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` parked worker threads (the caller is the `+1`th
    /// evaluator of every batch).
    fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            gate: Mutex::new(Gate { batch: None, epoch: 0, shutdown: false }),
            gate_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("magma-eval-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Pool { shared, workers: handles }
    }

    /// Worker-thread count (excluding the participating caller).
    fn size(&self) -> usize {
        self.workers.len()
    }

    /// Publishes `batch`, participates in it, and blocks until it drains.
    fn run(&self, batch: &Arc<Batch>) {
        {
            let mut gate = self.shared.gate.lock().unwrap_or_else(PoisonError::into_inner);
            gate.batch = Some(Arc::clone(batch));
            gate.epoch += 1;
            self.shared.gate_cv.notify_all();
        }
        batch.work();
        batch.wait();
        // Hygiene: drop the pool's reference so the batch (and its dangling
        // context pointer) does not outlive the call in the gate.
        self.shared.gate.lock().unwrap_or_else(PoisonError::into_inner).batch = None;
    }

    /// Signals shutdown and joins every worker (used on resize; the final
    /// pool of a process is reclaimed by process exit).
    fn shutdown(self) {
        {
            let mut gate = self.shared.gate.lock().unwrap_or_else(PoisonError::into_inner);
            gate.shutdown = true;
            gate.epoch += 1;
            self.shared.gate_cv.notify_all();
        }
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}

/// A worker: park on the gate, steal chunks from each published batch, park
/// again; exit on shutdown.
fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let batch = {
            let mut gate = shared.gate.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if gate.shutdown {
                    return;
                }
                if gate.epoch != seen_epoch {
                    seen_epoch = gate.epoch;
                    if let Some(batch) = gate.batch.clone() {
                        break batch;
                    }
                    // The epoch moved but the batch already drained and was
                    // cleared — nothing to steal, keep waiting.
                    continue;
                }
                gate = shared.gate_cv.wait(gate).unwrap_or_else(PoisonError::into_inner);
            }
        };
        batch.work();
    }
}

/// Lifecycle counters of the process-wide pool (see [`stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive (0 before the first parallel batch;
    /// the participating caller is not counted, so a `MAGMA_THREADS=4` run
    /// shows 3).
    pub workers: usize,
    /// Times a pool was (re)built, including the initial lazy build. Stays
    /// flat while the resolved worker count is stable — that flatness *is*
    /// the persistence claim, and the rebuild tests assert both directions.
    pub builds: u64,
    /// Batches submitted through the pool since process start (serial-path
    /// batches are not counted).
    pub batches: u64,
}

/// The process-wide pool registry. One pool exists at a time; submissions
/// are serialized through this mutex (the workers are a shared resource, so
/// two concurrent batches would time-slice the same cores anyway).
struct Manager {
    pool: Option<Pool>,
    builds: u64,
    batches: u64,
}

static MANAGER: OnceLock<Mutex<Manager>> = OnceLock::new();

fn manager() -> &'static Mutex<Manager> {
    MANAGER.get_or_init(|| Mutex::new(Manager { pool: None, builds: 0, batches: 0 }))
}

/// A snapshot of the pool's lifecycle counters. Test-facing: the
/// persistence suite asserts that repeated batches at a stable thread count
/// reuse one pool (`builds` flat, `batches` rising) and that a thread-count
/// change rebuilds it (`builds` rising, `workers` tracking the new count).
pub fn stats() -> PoolStats {
    let mgr = manager().lock().unwrap_or_else(PoisonError::into_inner);
    PoolStats {
        workers: mgr.pool.as_ref().map_or(0, Pool::size),
        builds: mgr.builds,
        batches: mgr.batches,
    }
}

/// Evaluates `mappings` into `out` using the persistent pool at the given
/// total thread count (caller + `threads - 1` workers), rebuilding the pool
/// first if its size does not match.
///
/// The caller must pre-screen: `threads >= 2`, `mappings.len() >= 2`, and
/// not already on a pool thread ([`on_pool_thread`]).
///
/// # Panics
///
/// Re-throws the first panic raised by any chunk's `evaluate`, after the
/// whole batch has drained (so the borrowed buffers are never abandoned to
/// running workers).
pub(crate) fn submit<P: MappingProblem + ?Sized>(
    problem: &P,
    mappings: &[Mapping],
    out: &mut [f64],
    threads: usize,
) {
    debug_assert!(threads >= 2 && mappings.len() >= 2 && mappings.len() == out.len());
    let mut mgr = manager().lock().unwrap_or_else(PoisonError::into_inner);
    let wanted = threads - 1;
    if mgr.pool.as_ref().is_none_or(|p| p.size() != wanted) {
        if let Some(old) = mgr.pool.take() {
            old.shutdown();
        }
        mgr.pool = Some(Pool::new(wanted));
        mgr.builds += 1;
    }

    // Chunk granularity: a few steals per evaluator balances heterogeneous
    // chunk costs without paying cursor traffic per mapping.
    let chunk = (mappings.len() / (threads * 4)).max(1);
    let ctx = Ctx { problem, mappings, out: out.as_mut_ptr() };
    let batch = Arc::new(Batch {
        ctx: (&ctx as *const Ctx<'_, P>).cast(),
        run: run_chunk::<P>,
        len: mappings.len(),
        chunk,
        cursor: AtomicUsize::new(0),
        pending: AtomicUsize::new(mappings.len().div_ceil(chunk)),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    mgr.pool.as_ref().expect("pool was just ensured").run(&batch);
    mgr.batches += 1;
    let payload = batch.panic.lock().unwrap_or_else(PoisonError::into_inner).take();
    drop(mgr);
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::test_support::ToyProblem;
    use crate::parallel::evaluate_batch_with;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Pool-lifecycle assertions share the process-wide pool with every
    /// other test in this binary; serialize them so the counters they
    /// assert on are their own.
    static LIFECYCLE: Mutex<()> = Mutex::new(());

    fn population(jobs: usize, accels: usize, count: usize, seed: u64) -> Vec<Mapping> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| Mapping::random(&mut rng, jobs, accels)).collect()
    }

    #[test]
    fn batches_reuse_one_pool_until_the_count_changes() {
        let _guard = LIFECYCLE.lock().unwrap_or_else(PoisonError::into_inner);
        let p = ToyProblem { jobs: 12, accels: 3 };
        let pop = population(12, 3, 40, 0);
        let serial: Vec<f64> = pop.iter().map(|m| p.evaluate(m)).collect();

        assert_eq!(evaluate_batch_with(&p, &pop, 3), serial);
        let after_first = stats();
        assert_eq!(after_first.workers, 2);

        for _ in 0..5 {
            assert_eq!(evaluate_batch_with(&p, &pop, 3), serial);
        }
        let after_reuse = stats();
        assert_eq!(after_reuse.workers, 2, "stable count must not resize the pool");
        assert_eq!(after_reuse.builds, after_first.builds, "stable count must not rebuild");
        assert_eq!(after_reuse.batches, after_first.batches + 5);

        assert_eq!(evaluate_batch_with(&p, &pop, 5), serial);
        let after_resize = stats();
        assert_eq!(after_resize.workers, 4, "pool must track the new thread count");
        assert_eq!(after_resize.builds, after_first.builds + 1, "resize is one clean rebuild");
    }

    #[test]
    fn serial_and_singleton_paths_never_touch_the_pool() {
        let _guard = LIFECYCLE.lock().unwrap_or_else(PoisonError::into_inner);
        let p = ToyProblem { jobs: 6, accels: 2 };
        let pop = population(6, 2, 20, 1);
        let before = stats();
        let _ = evaluate_batch_with(&p, &pop, 1);
        let _ = evaluate_batch_with(&p, &pop[..1], 8);
        let _ = evaluate_batch_with(&p, &[], 8);
        assert_eq!(stats().batches, before.batches);
    }

    #[test]
    fn chunk_panics_drain_the_batch_and_propagate() {
        let _guard = LIFECYCLE.lock().unwrap_or_else(PoisonError::into_inner);
        // A problem that panics on some candidates: the barrier must still
        // release (no abandoned borrow) and the panic must reach the caller.
        struct Spiky;
        impl MappingProblem for Spiky {
            fn num_jobs(&self) -> usize {
                5
            }
            fn num_accels(&self) -> usize {
                2
            }
            fn evaluate(&self, m: &Mapping) -> f64 {
                assert!(m.priority()[0] >= 0.5, "injected evaluation panic");
                1.0
            }
        }
        // Among 16 random candidates some lead priority is < 0.5.
        let pop = population(5, 2, 16, 2);
        assert!(pop.iter().any(|m| m.priority()[0] < 0.5));
        let caught = catch_unwind(AssertUnwindSafe(|| evaluate_batch_with(&Spiky, &pop, 4)));
        assert!(caught.is_err(), "the chunk panic must propagate");
        // The pool survives a panicking batch.
        let p = ToyProblem { jobs: 5, accels: 2 };
        let serial: Vec<f64> = pop.iter().map(|m| p.evaluate(m)).collect();
        assert_eq!(evaluate_batch_with(&p, &pop, 4), serial);
    }

    #[test]
    fn on_pool_thread_is_false_outside_batches() {
        assert!(!on_pool_thread());
    }
}
