//! MAGMA / M3E — an optimization framework for mapping multiple DNNs on
//! multiple accelerator cores.
//!
//! This crate is the user-facing façade of the reproduction of the HPCA 2022
//! paper *"MAGMA: An Optimization Framework for Mapping Multiple DNNs on
//! Multiple Accelerator Cores"*. It re-exports the component crates and adds
//! a high-level [`MapperBuilder`] API plus the [`experiments`] module that
//! regenerates every figure and table of the paper's evaluation.
//!
//! # Components
//!
//! * [`magma_model`] — DNN model zoo, jobs, groups and workload generation.
//! * [`magma_cost`] — MAESTRO-like analytical cost model for sub-accelerators.
//! * [`magma_platform`] — multi-core accelerator platforms (Table III, S1–S6).
//! * [`magma_m3e`] — the M3E optimization framework: encoding, job analyzer,
//!   bandwidth allocator (Algorithm 1), fitness evaluation and warm start.
//! * [`magma_optim`] — the MAGMA genetic algorithm and every baseline the
//!   paper compares against (stdGA, DE, CMA-ES, PSO, TBPSA, A2C, PPO2,
//!   Herald-like, AI-MT-like).
//! * [`magma_serve`] — the online multi-tenant serving simulator: traffic
//!   scenarios, admission batching, a signature-keyed mapping cache and a
//!   virtual-clock latency/throughput metrics pipeline.
//!
//! # Paper cross-references
//!
//! The [`experiments`] module documents a full figure/table → function map
//! (Figs. 7–17 and Table V). The warm-start experiment
//! ([`experiments::warm_start_study`]) uses profile-matched adaptation
//! (Section V-C) by default;
//! [`experiments::warm_start_study_with_mode`] exposes the index-wrapped
//! baseline for comparison.
//!
//! # Quickstart
//!
//! ```
//! use magma::prelude::*;
//!
//! // A Mix-task group of 30 jobs on the small heterogeneous accelerator S2.
//! let report = MapperBuilder::new()
//!     .setting(Setting::S2)
//!     .task(TaskType::Mix)
//!     .group_size(30)
//!     .budget(500)
//!     .seed(7)
//!     .run();
//!
//! println!("MAGMA found {:.1} GFLOP/s", report.throughput_gflops);
//! assert!(report.throughput_gflops > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod experiments;

pub use builder::{Algorithm, MapperBuilder, MappingReport};

pub use magma_cost as cost;
pub use magma_m3e as m3e;
pub use magma_model as model;
pub use magma_optim as optim;
pub use magma_platform as platform;
pub use magma_serve as serve;

/// Convenience re-exports covering the common workflow: build a workload,
/// pick a platform, run a mapper, inspect the schedule.
pub mod prelude {
    pub use crate::builder::{Algorithm, MapperBuilder, MappingReport};
    pub use magma_cost::{CostModel, DataflowStyle, SubAccelConfig};
    pub use magma_m3e::{
        JobAnalyzer, M3e, Mapping, MappingProblem, Objective, Schedule, SearchHistory,
        SolutionHistory, WarmStartEngine, WarmStartMode,
    };
    pub use magma_model::{
        Group, Job, JobId, JobSignature, LayerShape, Model, TaskType, Tenant, TenantMix,
        WorkloadSpec,
    };
    pub use magma_optim::{
        all_mappers, AiMtLike, BatchEvaluator, HeraldLike, Magma, MagmaConfig, OperatorSet,
        Optimizer, RandomSearch, SearchOutcome, SearchSession, SessionState, StepReport,
    };
    pub use magma_platform::{settings, AcceleratorPlatform, Setting};
    pub use magma_serve::{
        DispatchConfig, MappingCache, MappingService, Scenario, ServeReport, SimConfig,
    };
}
