//! Reproductions of every experiment in the paper's evaluation section.
//!
//! Each function regenerates the data behind one figure or table. The
//! functions are parameterized by group size and sampling budget so the
//! Criterion benches and the unit tests can run them at reduced scale, while
//! the binaries in `magma-bench` run them at the paper's scale (group size
//! 100, 10 K samples).
//!
//! | Paper artefact | Function |
//! |---|---|
//! | Fig. 7 | [`fig7_job_analysis`] |
//! | Fig. 8 / Fig. 9 | [`compare_all_mappers`] |
//! | Fig. 10 | [`exploration_study`] |
//! | Fig. 11 / Fig. 16 | [`convergence_curves`], [`operator_ablation`] |
//! | Fig. 12 | [`bw_sweep`] |
//! | Fig. 13 | [`subaccel_combination_study`] |
//! | Fig. 14 | [`flexible_vs_fixed`] |
//! | Fig. 15 | [`schedule_comparison`] |
//! | Fig. 17 | [`group_size_sweep`] |
//! | Table V | [`warm_start_study`] |
//!
//! # Parallelism
//!
//! Every experiment drives its optimizers through the batch-evaluation
//! oracle in [`magma_optim::parallel`], so population fitness evaluation —
//! the dominant cost of every figure — fans out over `MAGMA_THREADS` worker
//! threads (default: all available cores). The knob only changes wall-clock
//! time: results are bit-identical at every thread count, which
//! `tests/integration_parallel.rs` asserts per optimizer. The perf harness
//! (`magma-bench`'s `perf_suite` binary) records the achieved
//! evaluations/sec per thread count in `BENCH_parallel_eval.json`.

use magma_cost::{CostModel, DataflowStyle, SubAccelConfig};
use magma_m3e::{M3e, Objective, WarmStartEngine, WarmStartMode};
use magma_model::{zoo, TaskType, WorkloadSpec};
use magma_optim::{
    all_mappers, bw_sweep_mappers, Magma, MagmaConfig, OperatorSet, Optimizer, RandomSearch,
};
use magma_platform::{settings, AcceleratorPlatform, Setting};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Common result types
// ---------------------------------------------------------------------------

/// Throughput achieved by one mapping method on one problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodScore {
    /// The mapper's name (Table IV label).
    pub method: String,
    /// Achieved group throughput in GFLOP/s.
    pub gflops: f64,
    /// Throughput normalized by MAGMA's result on the same problem.
    pub normalized: f64,
}

/// Normalizes a list of raw scores by the entry named `"MAGMA"` (or the
/// maximum if MAGMA is absent), mirroring how every figure in the paper is
/// normalized.
pub fn normalize_by_magma(raw: Vec<(String, f64)>) -> Vec<MethodScore> {
    let reference = raw
        .iter()
        .find(|(n, _)| n == "MAGMA")
        .map(|(_, v)| *v)
        .unwrap_or_else(|| raw.iter().map(|(_, v)| *v).fold(f64::MIN_POSITIVE, f64::max));
    raw.into_iter()
        .map(|(method, gflops)| MethodScore {
            method,
            gflops,
            normalized: if reference > 0.0 { gflops / reference } else { 0.0 },
        })
        .collect()
}

fn build_platform(setting: Setting, bw_gbps: Option<f64>) -> AcceleratorPlatform {
    match bw_gbps {
        Some(bw) => settings::build_with_bw(setting, bw),
        None => settings::build(setting),
    }
}

fn build_problem(
    setting: Setting,
    task: TaskType,
    bw_gbps: Option<f64>,
    group_size: usize,
    seed: u64,
) -> M3e {
    let platform = build_platform(setting, bw_gbps);
    let group = WorkloadSpec::single_group(task, group_size, seed);
    M3e::new(platform, group, Objective::Throughput)
}

// ---------------------------------------------------------------------------
// Fig. 7 — per-model latency / bandwidth characteristics
// ---------------------------------------------------------------------------

/// One row of the Fig. 7(a) table: a model profiled on the HB and LB
/// dataflow styles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobAnalysisRow {
    /// Model name.
    pub model: String,
    /// Task category of the model.
    pub task: TaskType,
    /// Average per-job no-stall latency on the HB core (cycles).
    pub hb_latency_cycles: f64,
    /// Average per-job no-stall latency on the LB core (cycles).
    pub lb_latency_cycles: f64,
    /// Average per-job required bandwidth on the HB core (GB/s).
    pub hb_bw_gbps: f64,
    /// Average per-job required bandwidth on the LB core (GB/s).
    pub lb_bw_gbps: f64,
}

/// Reproduces Fig. 7: the average per-job no-stall latency and required
/// bandwidth of three representative models per task, on a 64×64 HB core and
/// a 64×64 LB core, plus per-task averages.
///
/// Returns `(per_model_rows, per_task_averages)`.
pub fn fig7_job_analysis(batch: usize) -> (Vec<JobAnalysisRow>, Vec<JobAnalysisRow>) {
    let model_list = zoo::fig7_models();
    let cost = CostModel::default();
    let hb = SubAccelConfig::new("hb", 64, 64, DataflowStyle::HighBandwidth, 291 * 1024);
    let lb = SubAccelConfig::new("lb", 64, 64, DataflowStyle::LowBandwidth, 218 * 1024);

    let mut rows = Vec::new();
    for m in &model_list {
        let mut hb_lat = 0.0;
        let mut lb_lat = 0.0;
        let mut hb_bw = 0.0;
        let mut lb_bw = 0.0;
        let mut count = 0.0;
        for layer in m.accelerator_layers() {
            let eh = cost.estimate(layer, batch, &hb);
            let el = cost.estimate(layer, batch, &lb);
            hb_lat += eh.no_stall_cycles as f64;
            lb_lat += el.no_stall_cycles as f64;
            hb_bw += eh.required_bw_gbps;
            lb_bw += el.required_bw_gbps;
            count += 1.0;
        }
        rows.push(JobAnalysisRow {
            model: m.name().to_string(),
            task: m.task(),
            hb_latency_cycles: hb_lat / count,
            lb_latency_cycles: lb_lat / count,
            hb_bw_gbps: hb_bw / count,
            lb_bw_gbps: lb_bw / count,
        });
    }

    let mut averages = Vec::new();
    for task in TaskType::PURE {
        let task_rows: Vec<&JobAnalysisRow> = rows.iter().filter(|r| r.task == task).collect();
        let n = task_rows.len() as f64;
        averages.push(JobAnalysisRow {
            model: format!("{task} (avg)"),
            task,
            hb_latency_cycles: task_rows.iter().map(|r| r.hb_latency_cycles).sum::<f64>() / n,
            lb_latency_cycles: task_rows.iter().map(|r| r.lb_latency_cycles).sum::<f64>() / n,
            hb_bw_gbps: task_rows.iter().map(|r| r.hb_bw_gbps).sum::<f64>() / n,
            lb_bw_gbps: task_rows.iter().map(|r| r.lb_bw_gbps).sum::<f64>() / n,
        });
    }
    (rows, averages)
}

// ---------------------------------------------------------------------------
// Fig. 8 / Fig. 9 — mapper comparison on one accelerator setting
// ---------------------------------------------------------------------------

/// Runs every mapper of Table IV on one (setting, task, BW) problem instance
/// and returns their throughputs, normalized by MAGMA (Fig. 8 and Fig. 9).
pub fn compare_all_mappers(
    setting: Setting,
    task: TaskType,
    bw_gbps: Option<f64>,
    group_size: usize,
    budget: usize,
    seed: u64,
) -> Vec<MethodScore> {
    let problem = build_problem(setting, task, bw_gbps, group_size, seed);
    let raw = all_mappers()
        .iter()
        .map(|mapper| {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = mapper.search(&problem, budget, &mut rng);
            (mapper.name().to_string(), outcome.best_fitness)
        })
        .collect();
    normalize_by_magma(raw)
}

// ---------------------------------------------------------------------------
// Fig. 10 — exploration study with an exhaustive-sampling reference
// ---------------------------------------------------------------------------

/// Reproduces the Fig. 10(c) table: the throughput reached by MAGMA, PPO2,
/// stdGA, PSO and CMA at `budget` samples, plus a random-sampling reference
/// given `reference_budget` samples (the paper's "exhaustively sampled"
/// column used ~1 M).
pub fn exploration_study(
    setting: Setting,
    task: TaskType,
    bw_gbps: Option<f64>,
    group_size: usize,
    budget: usize,
    reference_budget: usize,
    seed: u64,
) -> Vec<MethodScore> {
    let problem = build_problem(setting, task, bw_gbps, group_size, seed);
    let mut raw: Vec<(String, f64)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let reference = RandomSearch::new().search(&problem, reference_budget, &mut rng);
    raw.push(("Exhaustively Sampled".to_string(), reference.best_fitness));
    for mapper in all_mappers() {
        if ["MAGMA", "RL PPO2", "stdGA", "PSO", "CMA"].contains(&mapper.name()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = mapper.search(&problem, budget, &mut rng);
            raw.push((mapper.name().to_string(), outcome.best_fitness));
        }
    }
    normalize_by_magma(raw)
}

// ---------------------------------------------------------------------------
// Fig. 11 / Fig. 16 — convergence curves and operator ablation
// ---------------------------------------------------------------------------

/// A downsampled best-so-far convergence curve for one method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceCurve {
    /// The mapper's name.
    pub method: String,
    /// (samples evaluated, best GFLOP/s so far) points.
    pub points: Vec<(usize, f64)>,
}

/// Reproduces Fig. 11: convergence curves of every mapper on one problem
/// instance, downsampled to `points` entries each.
pub fn convergence_curves(
    setting: Setting,
    task: TaskType,
    bw_gbps: Option<f64>,
    group_size: usize,
    budget: usize,
    points: usize,
    seed: u64,
) -> Vec<ConvergenceCurve> {
    let problem = build_problem(setting, task, bw_gbps, group_size, seed);
    all_mappers()
        .iter()
        .map(|mapper| {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = mapper.search(&problem, budget, &mut rng);
            ConvergenceCurve {
                method: mapper.name().to_string(),
                points: outcome.history.downsampled_curve(points),
            }
        })
        .collect()
}

/// Reproduces Fig. 16: MAGMA's convergence with three operator sets —
/// mutation only, mutation + Crossover-gen, and all four operators.
pub fn operator_ablation(
    setting: Setting,
    task: TaskType,
    bw_gbps: Option<f64>,
    group_size: usize,
    budget: usize,
    points: usize,
    seed: u64,
) -> Vec<ConvergenceCurve> {
    let problem = build_problem(setting, task, bw_gbps, group_size, seed);
    [OperatorSet::mutation_only(), OperatorSet::mutation_and_gen(), OperatorSet::all()]
        .into_iter()
        .map(|ops| {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = Magma::with_operators(ops).search(&problem, budget, &mut rng);
            ConvergenceCurve {
                method: ops.label(),
                points: outcome.history.downsampled_curve(points),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 12 — bandwidth sweep
// ---------------------------------------------------------------------------

/// Reproduces Fig. 12: Herald-like, RL A2C, RL PPO2 and MAGMA across a sweep
/// of system bandwidths. Returns one entry per bandwidth with the per-method
/// scores normalized by MAGMA at that bandwidth.
pub fn bw_sweep(
    setting: Setting,
    task: TaskType,
    bandwidths_gbps: &[f64],
    group_size: usize,
    budget: usize,
    seed: u64,
) -> Vec<(f64, Vec<MethodScore>)> {
    bandwidths_gbps
        .iter()
        .map(|&bw| {
            let problem = build_problem(setting, task, Some(bw), group_size, seed);
            let raw = bw_sweep_mappers()
                .iter()
                .map(|mapper| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let outcome = mapper.search(&problem, budget, &mut rng);
                    (mapper.name().to_string(), outcome.best_fitness)
                })
                .collect();
            (bw, normalize_by_magma(raw))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 13 — sub-accelerator combinations (S3 vs S4 vs S5)
// ---------------------------------------------------------------------------

/// One row of the Fig. 13 study: job-analysis statistics and MAGMA
/// throughput for one setting at one bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationRow {
    /// Accelerator setting.
    pub setting: String,
    /// System bandwidth used (GB/s).
    pub bw_gbps: f64,
    /// Average per-job no-stall latency across jobs and cores (cycles).
    pub avg_no_stall_cycles: f64,
    /// Average per-job required bandwidth across jobs and cores (GB/s).
    pub avg_required_bw_gbps: f64,
    /// Throughput reached by MAGMA (GFLOP/s).
    pub magma_gflops: f64,
}

/// Reproduces Fig. 13: compares S3 (homogeneous), S4 (heterogeneous) and S5
/// (BigLittle) under the given bandwidths using MAGMA.
pub fn subaccel_combination_study(
    task: TaskType,
    bandwidths_gbps: &[f64],
    group_size: usize,
    budget: usize,
    seed: u64,
) -> Vec<CombinationRow> {
    let mut rows = Vec::new();
    for &bw in bandwidths_gbps {
        for setting in [Setting::S3, Setting::S4, Setting::S5] {
            let problem = build_problem(setting, task, Some(bw), group_size, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = Magma::default().search(&problem, budget, &mut rng);
            rows.push(CombinationRow {
                setting: setting.to_string(),
                bw_gbps: bw,
                avg_no_stall_cycles: problem.table().avg_no_stall_cycles(),
                avg_required_bw_gbps: problem.table().avg_required_bw_gbps(),
                magma_gflops: outcome.best_fitness,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 14 — fixed vs flexible PE arrays
// ---------------------------------------------------------------------------

/// One row of the Fig. 14 study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlexibleRow {
    /// Accelerator setting the flexible variant is derived from.
    pub setting: String,
    /// Task category.
    pub task: TaskType,
    /// System bandwidth (GB/s).
    pub bw_gbps: f64,
    /// MAGMA throughput with fixed PE arrays (GFLOP/s).
    pub fixed_gflops: f64,
    /// MAGMA throughput with flexible PE arrays (GFLOP/s).
    pub flexible_gflops: f64,
    /// Average per-job no-stall latency, fixed arrays (cycles).
    pub fixed_avg_latency: f64,
    /// Average per-job no-stall latency, flexible arrays (cycles).
    pub flexible_avg_latency: f64,
    /// Average per-job required BW, fixed arrays (GB/s).
    pub fixed_avg_bw: f64,
    /// Average per-job required BW, flexible arrays (GB/s).
    pub flexible_avg_bw: f64,
}

/// Reproduces Fig. 14: MAGMA on fixed vs flexible PE-array variants of a
/// setting, for one task and one bandwidth.
pub fn flexible_vs_fixed(
    setting: Setting,
    task: TaskType,
    bw_gbps: f64,
    group_size: usize,
    budget: usize,
    seed: u64,
) -> FlexibleRow {
    let group = WorkloadSpec::single_group(task, group_size, seed);
    let fixed_platform = settings::build_with_bw(setting, bw_gbps);
    let flex_platform = settings::build_flexible(setting, bw_gbps);

    let fixed = M3e::new(fixed_platform, group.clone(), Objective::Throughput);
    let flex = M3e::new(flex_platform, group, Objective::Throughput);

    let mut rng = StdRng::seed_from_u64(seed);
    let fixed_out = Magma::default().search(&fixed, budget, &mut rng);
    let mut rng = StdRng::seed_from_u64(seed);
    let flex_out = Magma::default().search(&flex, budget, &mut rng);

    FlexibleRow {
        setting: setting.to_string(),
        task,
        bw_gbps,
        fixed_gflops: fixed_out.best_fitness,
        flexible_gflops: flex_out.best_fitness,
        fixed_avg_latency: fixed.table().avg_no_stall_cycles(),
        flexible_avg_latency: flex.table().avg_no_stall_cycles(),
        fixed_avg_bw: fixed.table().avg_required_bw_gbps(),
        flexible_avg_bw: flex.table().avg_required_bw_gbps(),
    }
}

// ---------------------------------------------------------------------------
// Fig. 15 — schedule visualization
// ---------------------------------------------------------------------------

/// The schedules found by Herald-like and MAGMA on the same problem, with
/// their text Gantt charts (Fig. 15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleComparison {
    /// Herald-like finish time in seconds.
    pub herald_finish_sec: f64,
    /// MAGMA finish time in seconds.
    pub magma_finish_sec: f64,
    /// Herald-like throughput (GFLOP/s).
    pub herald_gflops: f64,
    /// MAGMA throughput (GFLOP/s).
    pub magma_gflops: f64,
    /// Text Gantt chart of the Herald-like schedule.
    pub herald_gantt: String,
    /// Text Gantt chart of the MAGMA schedule.
    pub magma_gantt: String,
}

/// Reproduces Fig. 15: the sub-accelerator and bandwidth allocation found by
/// Herald-like versus MAGMA on the same (task, setting, BW) instance.
pub fn schedule_comparison(
    setting: Setting,
    task: TaskType,
    bw_gbps: f64,
    group_size: usize,
    budget: usize,
    seed: u64,
) -> ScheduleComparison {
    let problem = build_problem(setting, task, Some(bw_gbps), group_size, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let herald = magma_optim::HeraldLike::new().search(&problem, 1, &mut rng);
    let magma = Magma::default().search(&problem, budget, &mut rng);
    let hs = problem.schedule(&herald.best_mapping);
    let ms = problem.schedule(&magma.best_mapping);
    ScheduleComparison {
        herald_finish_sec: hs.makespan_sec(),
        magma_finish_sec: ms.makespan_sec(),
        herald_gflops: hs.throughput_gflops(),
        magma_gflops: ms.throughput_gflops(),
        herald_gantt: hs.render_gantt(100),
        magma_gantt: ms.render_gantt(100),
    }
}

// ---------------------------------------------------------------------------
// Fig. 17 — group-size sweep
// ---------------------------------------------------------------------------

/// Reproduces Fig. 17: MAGMA throughput for different group sizes on the same
/// (setting, task, BW) configuration. Returns `(group_size, gflops)` pairs.
pub fn group_size_sweep(
    setting: Setting,
    task: TaskType,
    bw_gbps: Option<f64>,
    group_sizes: &[usize],
    budget: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    group_sizes
        .iter()
        .map(|&gs| {
            let problem = build_problem(setting, task, bw_gbps, gs, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = Magma::default().search(&problem, budget, &mut rng);
            (gs, outcome.best_fitness)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table V — warm start
// ---------------------------------------------------------------------------

/// Warm-start performance on one problem instance, normalized by the full
/// optimization (Trf-100-ep ≡ 1.0), as in Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartRow {
    /// Instance label (Insts0 is the originally optimized group).
    pub instance: String,
    /// Best random individual with no optimization (the "Raw" row).
    pub raw: f64,
    /// Warm-started solution before any optimization (Trf-0-ep).
    pub transfer_0_epoch: f64,
    /// Warm start followed by one epoch of MAGMA (Trf-1-ep).
    pub transfer_1_epoch: f64,
    /// Warm start followed by 30 epochs (Trf-30-ep).
    pub transfer_30_epoch: f64,
    /// Full optimization from the warm start (Trf-100-ep, the normalizer).
    pub transfer_100_epoch: f64,
}

/// Reproduces Table V(a): optimize one group (`Insts0`), then warm-start on
/// `num_instances` fresh groups of the same task and measure the normalized
/// throughput after 0, 1, 30 and 100 epochs (an epoch is one population worth
/// of samples, i.e. `group_size` evaluations).
///
/// Uses the profile-matched adaptation ([`WarmStartMode::ProfileMatched`]),
/// which carries the paper's transfer claim; see
/// [`warm_start_study_with_mode`] to reproduce the index-wrapped baseline.
pub fn warm_start_study(
    setting: Setting,
    task: TaskType,
    bw_gbps: Option<f64>,
    group_size: usize,
    num_instances: usize,
    seed: u64,
) -> Vec<WarmStartRow> {
    warm_start_study_with_mode(
        setting,
        task,
        bw_gbps,
        group_size,
        num_instances,
        seed,
        WarmStartMode::ProfileMatched,
    )
}

/// As [`warm_start_study`] but with an explicit adaptation mode, so the
/// profile-matched transfer (the paper-faithful result) can be compared
/// against the index-wrapped baseline that loses to a random epoch on
/// compute-bound groups.
pub fn warm_start_study_with_mode(
    setting: Setting,
    task: TaskType,
    bw_gbps: Option<f64>,
    group_size: usize,
    num_instances: usize,
    seed: u64,
    mode: WarmStartMode,
) -> Vec<WarmStartRow> {
    let epoch = group_size.max(16);
    let full_budget = 100 * epoch;
    let mut engine = WarmStartEngine::new();

    // --- Insts0: plain optimization, store the best mapping with the job
    // signatures it was optimized for. ---
    let base_problem = build_problem(setting, task, bw_gbps, group_size, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let base_outcome = Magma::default().search(&base_problem, full_budget, &mut rng);
    engine.record_profiled(
        task,
        base_outcome.best_mapping.clone(),
        base_problem.signatures().to_vec(),
    );

    let mut rows = vec![WarmStartRow {
        instance: "Insts0 (optimized)".to_string(),
        raw: random_best(&base_problem, epoch, seed) / base_outcome.best_fitness,
        transfer_0_epoch: 1.0,
        transfer_1_epoch: 1.0,
        transfer_30_epoch: 1.0,
        transfer_100_epoch: 1.0,
    }];

    // --- Fresh instances of the same task: warm-start and refine. ---
    for inst in 1..=num_instances {
        let inst_seed = seed + inst as u64 * 101;
        let problem = build_problem(setting, task, bw_gbps, group_size, inst_seed);
        let mut rng = StdRng::seed_from_u64(inst_seed);

        let num_accels = build_platform(setting, bw_gbps).num_sub_accels();
        let seeded_pop = match mode {
            WarmStartMode::IndexWrap => {
                engine.seed_population(&mut rng, task, group_size, num_accels, epoch)
            }
            WarmStartMode::ProfileMatched => engine.seed_population_matched(
                &mut rng,
                task,
                problem.signatures(),
                num_accels,
                epoch,
            ),
        }
        .expect("knowledge was recorded for this task");
        let transfer_0 = problem.evaluate(&seeded_pop[0]);

        let run_epochs = |epochs: usize| -> f64 {
            let mut rng = StdRng::seed_from_u64(inst_seed);
            Magma::with_config(MagmaConfig {
                initial_population: Some(seeded_pop.clone()),
                ..MagmaConfig::default()
            })
            .search(&problem, epochs * epoch, &mut rng)
            .best_fitness
        };

        let full = run_epochs(100);
        rows.push(WarmStartRow {
            instance: format!("Insts{inst} (warm-start)"),
            raw: random_best(&problem, epoch, inst_seed) / full,
            transfer_0_epoch: transfer_0 / full,
            transfer_1_epoch: run_epochs(1) / full,
            transfer_30_epoch: run_epochs(30) / full,
            transfer_100_epoch: 1.0,
        });
    }
    rows
}

/// Best fitness of `budget` uniformly random mappings (the "Raw" baseline of
/// Table V).
fn random_best(problem: &M3e, budget: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    RandomSearch::new().search(problem, budget, &mut rng).best_fitness
}

// ---------------------------------------------------------------------------
// Search-space size (Section IV-F)
// ---------------------------------------------------------------------------

/// Log10 of the mapping search-space size for a group size and core count
/// (Section IV-F; 60 jobs on 4 cores ≈ 1e81).
pub fn search_space_log10(group_size: usize, num_accels: usize) -> f64 {
    magma_m3e::encoding::search_space_log10(group_size, num_accels)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GS: usize = 16;
    const BUDGET: usize = 150;

    #[test]
    fn fig7_has_expected_shape_and_trends() {
        let (rows, averages) = fig7_job_analysis(4);
        assert_eq!(rows.len(), 9);
        assert_eq!(averages.len(), 3);
        // HB is faster but hungrier than LB on language models (Fig. 7a).
        let gpt2 = rows.iter().find(|r| r.model == "GPT2").unwrap();
        assert!(gpt2.hb_latency_cycles < gpt2.lb_latency_cycles);
        assert!(gpt2.hb_bw_gbps > gpt2.lb_bw_gbps);
        // Vision has the highest latency, recommendation the highest BW need.
        let vis = &averages[0];
        let rec = &averages[2];
        assert!(vis.hb_latency_cycles > rec.hb_latency_cycles);
        assert!(rec.hb_bw_gbps > vis.hb_bw_gbps);
    }

    #[test]
    fn comparison_contains_all_ten_mappers_and_magma_is_reference() {
        let scores = compare_all_mappers(Setting::S2, TaskType::Mix, Some(16.0), GS, BUDGET, 0);
        assert_eq!(scores.len(), 10);
        let magma = scores.iter().find(|s| s.method == "MAGMA").unwrap();
        assert!((magma.normalized - 1.0).abs() < 1e-9);
        assert!(scores.iter().all(|s| s.gflops > 0.0));
    }

    #[test]
    fn bw_sweep_produces_one_row_per_bandwidth() {
        let rows = bw_sweep(Setting::S2, TaskType::Mix, &[1.0, 16.0], GS, BUDGET, 0);
        assert_eq!(rows.len(), 2);
        for (_, scores) in &rows {
            assert_eq!(scores.len(), 4);
        }
    }

    #[test]
    fn operator_ablation_has_three_levels() {
        let curves =
            operator_ablation(Setting::S2, TaskType::Vision, Some(16.0), GS, BUDGET, 10, 0);
        assert_eq!(curves.len(), 3);
        assert_eq!(curves[0].method, "Mut");
        assert_eq!(curves[2].method, "Mut+Crs-gen+Crs-rg+Crs-accel");
        for c in &curves {
            assert!(!c.points.is_empty());
        }
    }

    #[test]
    fn group_size_sweep_returns_requested_sizes() {
        let rows = group_size_sweep(Setting::S2, TaskType::Mix, Some(16.0), &[8, 16], BUDGET, 0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 8);
        assert!(rows.iter().all(|(_, g)| *g > 0.0));
    }

    #[test]
    fn flexible_beats_or_matches_fixed() {
        let row = flexible_vs_fixed(Setting::S1, TaskType::Mix, 16.0, GS, BUDGET, 0);
        assert!(row.flexible_gflops >= row.fixed_gflops * 0.9);
        assert!(row.flexible_avg_latency <= row.fixed_avg_latency * 1.05);
    }

    #[test]
    fn schedule_comparison_includes_ganff_charts() {
        let cmp = schedule_comparison(Setting::S2, TaskType::Mix, 1.0, GS, BUDGET, 0);
        assert!(cmp.herald_finish_sec > 0.0);
        assert!(cmp.magma_finish_sec > 0.0);
        assert!(cmp.herald_gantt.contains("accel"));
        assert!(cmp.magma_gantt.contains("GFLOP/s"));
        // MAGMA should not lose to the one-shot heuristic on its own problem.
        assert!(cmp.magma_gflops >= cmp.herald_gflops * 0.95);
    }

    #[test]
    fn search_space_matches_paper() {
        assert!((search_space_log10(60, 4) - 81.0).abs() < 1.5);
    }

    #[test]
    fn warm_start_rows_have_expected_shape_in_both_modes() {
        for mode in [WarmStartMode::IndexWrap, WarmStartMode::ProfileMatched] {
            let rows = warm_start_study_with_mode(
                Setting::S2,
                TaskType::Language,
                Some(16.0),
                8,
                1,
                0,
                mode,
            );
            assert_eq!(rows.len(), 2, "{mode}");
            // Trf-100-ep is the normalizer on every row.
            assert!(rows.iter().all(|r| r.transfer_100_epoch == 1.0), "{mode}");
            assert!(rows[1].transfer_0_epoch > 0.0, "{mode}");
        }
    }

    #[test]
    fn normalize_by_magma_uses_magma_as_reference() {
        let scores = normalize_by_magma(vec![("A".to_string(), 5.0), ("MAGMA".to_string(), 10.0)]);
        assert_eq!(scores[0].normalized, 0.5);
        assert_eq!(scores[1].normalized, 1.0);
    }
}
