//! The high-level, one-call API for running a mapping search.

use magma_m3e::{M3e, Mapping, Objective, Schedule, SearchHistory};
use magma_model::{Group, TaskType, WorkloadSpec};
use magma_optim::{
    cmaes::CmaEs, de::DifferentialEvolution, pso::Pso, rl::a2c::A2c, rl::ppo::Ppo2, stdga::StdGa,
    tbpsa::Tbpsa, AiMtLike, HeraldLike, Magma, Optimizer, RandomSearch,
};
use magma_platform::{settings, AcceleratorPlatform, Setting};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which mapping algorithm to run (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Algorithm {
    /// MAGMA — the paper's genetic algorithm (default).
    #[default]
    Magma,
    /// Standard genetic algorithm.
    StdGa,
    /// Differential evolution.
    De,
    /// Covariance matrix adaptation evolution strategy.
    CmaEs,
    /// Particle swarm optimization.
    Pso,
    /// Test-based population-size adaptation.
    Tbpsa,
    /// Advantage actor-critic.
    A2c,
    /// Proximal policy optimization.
    Ppo2,
    /// Uniform random search.
    Random,
    /// Herald-like manual heuristic.
    HeraldLike,
    /// AI-MT-like manual heuristic.
    AiMtLike,
}

impl Algorithm {
    /// All algorithms, in the order the paper's figures list them.
    pub const ALL: [Algorithm; 11] = [
        Algorithm::HeraldLike,
        Algorithm::AiMtLike,
        Algorithm::Pso,
        Algorithm::CmaEs,
        Algorithm::De,
        Algorithm::Tbpsa,
        Algorithm::StdGa,
        Algorithm::A2c,
        Algorithm::Ppo2,
        Algorithm::Magma,
        Algorithm::Random,
    ];

    /// Instantiates the optimizer behind this algorithm tag.
    pub fn build(self) -> Box<dyn Optimizer> {
        match self {
            Algorithm::Magma => Box::new(Magma::default()),
            Algorithm::StdGa => Box::new(StdGa::default()),
            Algorithm::De => Box::new(DifferentialEvolution::default()),
            Algorithm::CmaEs => Box::new(CmaEs::default()),
            Algorithm::Pso => Box::new(Pso::default()),
            Algorithm::Tbpsa => Box::new(Tbpsa::default()),
            Algorithm::A2c => Box::new(A2c::default()),
            Algorithm::Ppo2 => Box::new(Ppo2::default()),
            Algorithm::Random => Box::new(RandomSearch::new()),
            Algorithm::HeraldLike => Box::new(HeraldLike::new()),
            Algorithm::AiMtLike => Box::new(AiMtLike::new()),
        }
    }
}

/// The result of a mapping run.
#[derive(Debug, Clone)]
pub struct MappingReport {
    /// Name of the algorithm that produced the mapping.
    pub algorithm: String,
    /// The best mapping found.
    pub best_mapping: Mapping,
    /// Achieved fitness (GFLOP/s for the throughput objective).
    pub best_fitness: f64,
    /// Group throughput of the best mapping in GFLOP/s.
    pub throughput_gflops: f64,
    /// Makespan of the best mapping in seconds.
    pub makespan_sec: f64,
    /// The full schedule of the best mapping.
    pub schedule: Schedule,
    /// Per-sample search history.
    pub history: SearchHistory,
}

/// Builder for a complete mapping run: workload → platform → search → report.
///
/// Every knob has a sensible default mirroring the paper's evaluation setup
/// (S2, Mix task, group size 100, throughput objective, 10 K samples).
#[derive(Debug, Clone)]
pub struct MapperBuilder {
    setting: Setting,
    platform: Option<AcceleratorPlatform>,
    system_bw_gbps: Option<f64>,
    task: TaskType,
    group_size: usize,
    group: Option<Group>,
    objective: Objective,
    algorithm: Algorithm,
    budget: usize,
    seed: u64,
    initial_population: Option<Vec<Mapping>>,
}

impl Default for MapperBuilder {
    fn default() -> Self {
        MapperBuilder {
            setting: Setting::S2,
            platform: None,
            system_bw_gbps: None,
            task: TaskType::Mix,
            group_size: 100,
            group: None,
            objective: Objective::Throughput,
            algorithm: Algorithm::Magma,
            budget: 10_000,
            seed: 0,
            initial_population: None,
        }
    }
}

impl MapperBuilder {
    /// Creates a builder with the paper's default evaluation setup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects one of the Table III accelerator settings (default S2).
    pub fn setting(mut self, setting: Setting) -> Self {
        self.setting = setting;
        self
    }

    /// Uses an explicit platform instead of a Table III setting.
    pub fn platform(mut self, platform: AcceleratorPlatform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Overrides the system bandwidth in GB/s.
    pub fn system_bw_gbps(mut self, bw: f64) -> Self {
        self.system_bw_gbps = Some(bw);
        self
    }

    /// Selects the task category of the generated workload (default Mix).
    pub fn task(mut self, task: TaskType) -> Self {
        self.task = task;
        self
    }

    /// Sets the group size (default 100, as in the paper).
    pub fn group_size(mut self, size: usize) -> Self {
        self.group_size = size;
        self
    }

    /// Uses an explicit, caller-built group of jobs instead of a generated
    /// workload.
    pub fn group(mut self, group: Group) -> Self {
        self.group = Some(group);
        self
    }

    /// Sets the optimization objective (default throughput).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Selects the mapping algorithm (default MAGMA).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the sampling budget (default 10 000, as in the paper).
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the RNG seed controlling both workload generation and the search.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Seeds the search with an initial population instead of random
    /// initialization — the builder-level entry to the warm-start /
    /// budget-limited-resume path (Section V-C; used by the serving layer's
    /// cache-hit refinements). Honored by [`Algorithm::Magma`] only; other
    /// algorithms ignore the seeds.
    pub fn initial_population(mut self, population: Vec<Mapping>) -> Self {
        self.initial_population = Some(population);
        self
    }

    /// Builds the problem (platform + group + analysis table) without running
    /// a search — useful when several algorithms should share one problem
    /// instance.
    pub fn build_problem(&self) -> M3e {
        let mut platform = self.platform.clone().unwrap_or_else(|| settings::build(self.setting));
        if let Some(bw) = self.system_bw_gbps {
            platform = platform.with_system_bw_gbps(bw);
        }
        let group = self
            .group
            .clone()
            .unwrap_or_else(|| WorkloadSpec::single_group(self.task, self.group_size, self.seed));
        M3e::new(platform, group, self.objective)
    }

    /// Runs the configured algorithm and returns the report.
    pub fn run(&self) -> MappingReport {
        let problem = self.build_problem();
        self.run_on(&problem)
    }

    /// Runs the configured algorithm on an already-built problem.
    ///
    /// The run is driven through the steppable session API: since the
    /// redesign, [`Optimizer::search`] is a provided method that opens one
    /// [`magma_optim::SearchSession`] via [`Optimizer::start`] and steps it
    /// to the budget — so this is exactly the loop a serving layer would
    /// run, without duplicating it here.
    pub fn run_on(&self, problem: &M3e) -> MappingReport {
        let optimizer: Box<dyn Optimizer> = match (&self.initial_population, self.algorithm) {
            (Some(pop), Algorithm::Magma) => Box::new(Magma::with_warm_start(pop.clone())),
            _ => self.algorithm.build(),
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let outcome = optimizer.search(problem, self.budget, &mut rng);
        let schedule = problem.schedule(&outcome.best_mapping);
        MappingReport {
            algorithm: optimizer.name().to_string(),
            best_mapping: outcome.best_mapping,
            best_fitness: outcome.best_fitness,
            throughput_gflops: schedule.throughput_gflops(),
            makespan_sec: schedule.makespan_sec(),
            schedule,
            history: outcome.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_produces_valid_report() {
        let report = MapperBuilder::new().group_size(16).budget(200).seed(1).run();
        assert_eq!(report.algorithm, "MAGMA");
        assert!(report.throughput_gflops > 0.0);
        assert!(report.makespan_sec > 0.0);
        assert_eq!(report.schedule.segments().len(), 16);
        assert_eq!(report.history.num_samples(), 200);
    }

    #[test]
    fn all_algorithms_build() {
        for a in Algorithm::ALL {
            let _ = a.build();
        }
    }

    #[test]
    fn shared_problem_across_algorithms() {
        let builder = MapperBuilder::new().group_size(12).budget(60).seed(3);
        let problem = builder.build_problem();
        let magma = builder.clone().algorithm(Algorithm::Magma).run_on(&problem);
        let herald = builder.algorithm(Algorithm::HeraldLike).run_on(&problem);
        assert!(magma.throughput_gflops > 0.0);
        assert!(herald.throughput_gflops > 0.0);
    }

    #[test]
    fn initial_population_seeds_the_magma_search() {
        let builder = MapperBuilder::new().group_size(10).budget(20).seed(4);
        let problem = builder.build_problem();
        // Refine from the problem's own best-of-200 mapping: with only 20
        // samples the seeded run must start from (and so never fall below)
        // that fitness, while an unseeded 20-sample run has no such floor.
        let strong = builder.clone().budget(200).run_on(&problem);
        let seeded =
            builder.clone().initial_population(vec![strong.best_mapping.clone()]).run_on(&problem);
        assert!(seeded.best_fitness >= strong.best_fitness);
        assert_eq!(seeded.history.num_samples(), 20);
    }

    #[test]
    fn bw_override_is_applied() {
        let low = MapperBuilder::new().group_size(12).budget(80).system_bw_gbps(1.0).seed(2).run();
        let high =
            MapperBuilder::new().group_size(12).budget(80).system_bw_gbps(16.0).seed(2).run();
        assert!(high.throughput_gflops >= low.throughput_gflops);
    }
}
