//! The schema-stable `BENCH_rpc.json` contract (`magma-rpc/v1`).
//!
//! The load generator ([`crate::loadgen`]) emits one [`RpcReport`] per
//! run: client-measured latency percentiles over the wire, admission
//! outcomes, the server's final counter snapshot and the resolved
//! scenario descriptor — so a report is self-describing and
//! re-runnable. [`RpcReport::validate`] is the self-check CI gates on.

use std::path::PathBuf;

use magma_serve::{EngineStats, ScenarioDescriptor};
use serde::{Deserialize, Serialize};

/// Schema tag every `BENCH_rpc.json` carries.
pub const RPC_SCHEMA: &str = "magma-rpc/v1";

/// One load-generator run against a live daemon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RpcReport {
    /// Always [`RPC_SCHEMA`].
    pub schema: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// The daemon address the client dialed.
    pub addr: String,
    /// Offered request rate, requests per wall-clock second.
    pub rate: f64,
    /// Requests the client attempted to submit.
    pub requests: usize,
    /// Submits the daemon admitted.
    pub accepted: usize,
    /// Submits rejected with `busy` backpressure.
    pub rejected: usize,
    /// Submits rejected outright (`error` responses).
    pub errored: usize,
    /// Accepted submits that reached a terminal `done`.
    pub completed: usize,
    /// Completed submits whose group blew its deadline server-side.
    pub timed_out: usize,
    /// Accepted submits that terminated as `cancelled`.
    pub cancelled: usize,
    /// Accepted submits that never reached a terminal response —
    /// the drain guarantee makes this zero on a healthy run.
    pub dropped_in_flight: usize,
    /// Mean accepted-submit latency (submit sent → `done` received), ms.
    pub mean_latency_ms: f64,
    /// Median accepted-submit latency, ms.
    pub p50_latency_ms: f64,
    /// 95th-percentile accepted-submit latency, ms.
    pub p95_latency_ms: f64,
    /// 99th-percentile accepted-submit latency, ms.
    pub p99_latency_ms: f64,
    /// Jobs the drain reported completed over the daemon's lifetime.
    pub drained_jobs: usize,
    /// The daemon's final counter snapshot (from the `drained` response).
    pub server: EngineStats,
    /// The resolved scenario this run replayed.
    pub scenario_descriptor: ScenarioDescriptor,
}

impl RpcReport {
    /// Self-checks the report's internal consistency. Returns the first
    /// violation found, if any.
    pub fn validate(&self) -> Option<String> {
        if self.schema != RPC_SCHEMA {
            return Some(format!("schema is {:?}, expected {RPC_SCHEMA:?}", self.schema));
        }
        if self.mode != "full" && self.mode != "smoke" {
            return Some(format!("mode is {:?}, expected \"full\" or \"smoke\"", self.mode));
        }
        if !self.rate.is_finite() || self.rate <= 0.0 {
            return Some(format!("rate {} is not positive", self.rate));
        }
        if self.accepted + self.rejected + self.errored != self.requests {
            return Some(format!(
                "admission outcomes do not partition requests: {} accepted + {} rejected + {} \
                 errored != {} requests",
                self.accepted, self.rejected, self.errored, self.requests
            ));
        }
        if self.completed + self.cancelled + self.dropped_in_flight != self.accepted {
            return Some(format!(
                "terminal outcomes do not partition accepted submits: {} completed + {} \
                 cancelled + {} dropped != {} accepted",
                self.completed, self.cancelled, self.dropped_in_flight, self.accepted
            ));
        }
        if self.timed_out > self.completed {
            return Some(format!(
                "{} timed out exceeds {} completed",
                self.timed_out, self.completed
            ));
        }
        let percentiles =
            [self.mean_latency_ms, self.p50_latency_ms, self.p95_latency_ms, self.p99_latency_ms];
        if percentiles.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Some("latency statistics must be finite and non-negative".to_string());
        }
        if self.p50_latency_ms > self.p95_latency_ms || self.p95_latency_ms > self.p99_latency_ms {
            return Some(format!(
                "latency percentiles are not monotone: p50 {} > p95 {} or p95 > p99 {}",
                self.p50_latency_ms, self.p95_latency_ms, self.p99_latency_ms
            ));
        }
        if let Err(violation) = self.scenario_descriptor.validate() {
            return Some(format!("scenario descriptor: {violation}"));
        }
        None
    }
}

/// Writes the report to `BENCH_rpc.json` in `MAGMA_BENCH_DIR` (default:
/// the current directory); returns the path written.
pub fn write_rpc_json(report: &RpcReport) -> std::io::Result<PathBuf> {
    let dir = std::env::var("MAGMA_BENCH_DIR").map(PathBuf::from).unwrap_or_else(|_| ".".into());
    let path = dir.join("BENCH_rpc.json");
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::other(format!("serializing the RPC report: {e}")))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RpcReport {
        RpcReport {
            schema: RPC_SCHEMA.to_string(),
            mode: "smoke".to_string(),
            addr: "127.0.0.1:4270".to_string(),
            rate: 16.0,
            requests: 10,
            accepted: 8,
            rejected: 1,
            errored: 1,
            completed: 7,
            timed_out: 1,
            cancelled: 1,
            dropped_in_flight: 0,
            mean_latency_ms: 12.0,
            p50_latency_ms: 10.0,
            p95_latency_ms: 20.0,
            p99_latency_ms: 25.0,
            drained_jobs: 7,
            server: EngineStats::default(),
            scenario_descriptor: ScenarioDescriptor::new(
                "builtin",
                "loadgen_poisson",
                serde::Value::Map(vec![("rate".into(), serde::Value::F64(16.0))]),
            ),
        }
    }

    #[test]
    fn a_consistent_report_validates_and_round_trips() {
        let report = sample();
        assert_eq!(report.validate(), None);
        let back: RpcReport =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(back.validate(), None);
        assert_eq!(back.requests, report.requests);
    }

    #[test]
    fn every_partition_violation_is_caught() {
        let mut r = sample();
        r.schema = "bogus".into();
        assert!(r.validate().is_some());

        let mut r = sample();
        r.accepted += 1;
        assert!(r.validate().unwrap().contains("partition requests"));

        let mut r = sample();
        r.dropped_in_flight = 1;
        assert!(r.validate().unwrap().contains("partition accepted"));

        let mut r = sample();
        r.p50_latency_ms = 30.0;
        assert!(r.validate().unwrap().contains("monotone"));

        let mut r = sample();
        r.timed_out = 9;
        assert!(r.validate().is_some());
    }
}
