//! The load generator: replays a trace against a live daemon at a target
//! wall-clock rate and measures what the *client* sees.
//!
//! Each trace arrival becomes one `submit_group` over the wire at
//! `start + arrival.time_sec` of real time. Between sends the generator
//! pumps [`Client::poll_event`], correlating admission verdicts and
//! terminal `done`s by request id. After the last send it waits for all
//! in-flight submits (bounded by the timeout), takes one `stats`
//! snapshot to exercise the verb, then drains — the daemon finishes every
//! live session, persists its caches and answers with final counters,
//! which land in the [`RpcReport`] beside the client-side percentiles.

use std::collections::HashMap;
use std::io;
use std::time::{Duration, Instant};

use magma_serve::metrics::percentile;
use magma_serve::{Arrival, ScenarioDescriptor};

use crate::client::{Client, Event};
use crate::report::{RpcReport, RPC_SCHEMA};

/// Wall-clock replay parameters.
#[derive(Debug, Clone)]
pub struct LoadgenParams {
    /// Daemon address to dial.
    pub addr: String,
    /// Offered rate (requests per second) the trace was generated at;
    /// recorded in the report.
    pub rate: f64,
    /// Frame size limit, matching the daemon's.
    pub max_frame_bytes: usize,
    /// How long to wait for stragglers after the last send, seconds.
    pub timeout_sec: f64,
    /// Replay speed multiplier: 1.0 replays the trace's own timing,
    /// larger values compress it (arrival times are divided by this).
    pub speedup: f64,
}

/// Per-request bookkeeping while the replay runs.
struct Tracker {
    sent_at: Instant,
    latency: Option<Duration>,
    terminal: Terminal,
}

enum Terminal {
    Pending,
    Done { timed_out: bool },
    Cancelled,
    Busy,
    Errored,
}

/// Replays `trace` against the daemon and assembles the report.
///
/// `mode` is recorded verbatim (`"full"` / `"smoke"`). The returned
/// report has not been validated; callers gate on
/// [`RpcReport::validate`].
pub fn run(
    params: &LoadgenParams,
    trace: &[Arrival],
    descriptor: ScenarioDescriptor,
    mode: &str,
) -> io::Result<RpcReport> {
    assert!(params.speedup > 0.0, "speedup must be positive");
    let mut client = Client::connect(&params.addr, params.max_frame_bytes)?;
    let mut trackers: HashMap<u64, Tracker> = HashMap::new();
    let start = Instant::now();

    for arrival in trace {
        let due = Duration::from_secs_f64(arrival.time_sec / params.speedup);
        // Pump events until this arrival is due, then send it.
        loop {
            let elapsed = start.elapsed();
            if elapsed >= due {
                break;
            }
            let wait = (due - elapsed).min(Duration::from_millis(5));
            pump(&mut client, &mut trackers, wait)?;
        }
        let id = client.submit(arrival.tenant, vec![arrival.job.clone()])?;
        trackers.insert(
            id,
            Tracker { sent_at: Instant::now(), latency: None, terminal: Terminal::Pending },
        );
    }

    // Exercise the stats verb once while work may still be in flight.
    let stats_id = client.stats()?;
    let mut snapshot_seen = false;

    // Wait for every outstanding submit (and the stats snapshot), bounded
    // by the timeout.
    let deadline = Instant::now() + Duration::from_secs_f64(params.timeout_sec);
    while client.outstanding() > 0 && Instant::now() < deadline {
        if let Some(event) = pump_one(&mut client, &mut trackers, Duration::from_millis(10))? {
            if matches!(event, Event::Stats { id, .. } if id == stats_id) {
                snapshot_seen = true;
            }
        }
    }
    if !snapshot_seen {
        eprintln!("loadgen: stats snapshot never arrived (continuing)");
    }

    // Drain: the daemon finishes all live sessions, persists caches and
    // answers with its final stats, then shuts down.
    client.drain()?;
    let mut drained_jobs = 0usize;
    let mut server_stats = None;
    let drain_deadline = Instant::now() + Duration::from_secs_f64(params.timeout_sec.max(5.0));
    while Instant::now() < drain_deadline {
        match pump_one(&mut client, &mut trackers, Duration::from_millis(20))? {
            Some(Event::Drained { jobs, stats, .. }) => {
                drained_jobs = jobs;
                server_stats = stats;
                break;
            }
            Some(_) => {}
            None => {}
        }
    }
    let server_stats = server_stats.ok_or_else(|| {
        io::Error::new(io::ErrorKind::TimedOut, "daemon never acknowledged the drain")
    })?;

    // Tally.
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut errored = 0usize;
    let mut completed = 0usize;
    let mut timed_out = 0usize;
    let mut cancelled = 0usize;
    let mut dropped_in_flight = 0usize;
    let mut latencies_ms: Vec<f64> = Vec::new();
    for tracker in trackers.values() {
        match tracker.terminal {
            Terminal::Busy => rejected += 1,
            Terminal::Errored => errored += 1,
            Terminal::Pending => {
                accepted += 1;
                dropped_in_flight += 1;
            }
            Terminal::Cancelled => {
                accepted += 1;
                cancelled += 1;
            }
            Terminal::Done { timed_out: t } => {
                accepted += 1;
                completed += 1;
                if t {
                    timed_out += 1;
                }
                if let Some(latency) = tracker.latency {
                    latencies_ms.push(latency.as_secs_f64() * 1e3);
                }
            }
        }
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mean = if latencies_ms.is_empty() {
        0.0
    } else {
        latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
    };

    Ok(RpcReport {
        schema: RPC_SCHEMA.to_string(),
        mode: mode.to_string(),
        addr: params.addr.clone(),
        rate: params.rate,
        requests: trace.len(),
        accepted,
        rejected,
        errored,
        completed,
        timed_out,
        cancelled,
        dropped_in_flight,
        mean_latency_ms: mean,
        p50_latency_ms: percentile(&latencies_ms, 0.50),
        p95_latency_ms: percentile(&latencies_ms, 0.95),
        p99_latency_ms: percentile(&latencies_ms, 0.99),
        drained_jobs,
        server: server_stats,
        scenario_descriptor: descriptor,
    })
}

/// Pumps at most one event into the trackers; returns it.
fn pump_one(
    client: &mut Client,
    trackers: &mut HashMap<u64, Tracker>,
    timeout: Duration,
) -> io::Result<Option<Event>> {
    let Some(event) = client.poll_event(timeout)? else { return Ok(None) };
    match &event {
        Event::Accepted { .. } => {}
        Event::Busy { id, .. } => {
            if let Some(t) = trackers.get_mut(id) {
                t.terminal = Terminal::Busy;
            }
        }
        Event::Error { id, .. } => {
            if let Some(t) = trackers.get_mut(id) {
                t.terminal = Terminal::Errored;
            }
        }
        Event::Done { id, timed_out, .. } => {
            if let Some(t) = trackers.get_mut(id) {
                t.latency = Some(t.sent_at.elapsed());
                t.terminal = Terminal::Done { timed_out: *timed_out };
            }
        }
        Event::Cancelled { id } => {
            if let Some(t) = trackers.get_mut(id) {
                t.terminal = Terminal::Cancelled;
            }
        }
        Event::Drained { .. } | Event::Stats { .. } => {}
    }
    Ok(Some(event))
}

/// Pumps events for up to `timeout` (used while pacing sends).
fn pump(
    client: &mut Client,
    trackers: &mut HashMap<u64, Tracker>,
    timeout: Duration,
) -> io::Result<()> {
    pump_one(client, trackers, timeout).map(|_| ())
}
