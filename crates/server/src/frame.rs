//! Length-prefixed framing over a byte stream.
//!
//! Every message on the wire is one **frame**: a 4-byte big-endian payload
//! length followed by that many bytes of compact JSON. Framing is the only
//! layer that touches raw sockets; everything above it works on whole
//! payloads. The codec is deliberately dependency-free (no async runtime,
//! no protobuf) — the serving protocol is small enough that hand-rolled
//! framing plus the vendored `serde_json` covers it.
//!
//! Robustness contract, pinned by the unit tests:
//!
//! * reads tolerate arbitrary splits (a 1-byte-at-a-time reader decodes the
//!   same frames);
//! * a clean EOF *between* frames decodes as `None` (the peer hung up);
//! * an EOF *inside* a frame (header or payload) is an
//!   [`io::ErrorKind::UnexpectedEof`] error — never a silent truncation;
//! * a frame longer than the limit is rejected with
//!   [`io::ErrorKind::InvalidData`] before any payload byte is read, so a
//!   corrupt or malicious length prefix cannot balloon memory.

use std::io::{self, Read, Write};

/// Writes one frame (4-byte big-endian length + payload).
///
/// Refuses payloads longer than `max_frame_bytes` with
/// [`io::ErrorKind::InvalidData`] — the sender hits the same limit the
/// receiver would, with a better error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max_frame_bytes: usize) -> io::Result<()> {
    if payload.len() > max_frame_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {max_frame_bytes}-byte limit", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "frame length does not fit in 32 bits")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed the connection between messages).
pub fn read_frame<R: Read>(r: &mut R, max_frame_bytes: usize) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame_bytes}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-frame")
        } else {
            e
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out at most one byte per `read` call — the
    /// worst-case TCP segmentation.
    struct OneByte<R>(R);

    impl<R: Read> Read for OneByte<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.read(&mut buf[..1])
        }
    }

    #[test]
    fn frames_round_trip_even_one_byte_at_a_time() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello", 64).unwrap();
        write_frame(&mut wire, b"", 64).unwrap();
        write_frame(&mut wire, b"{\"id\":1}", 64).unwrap();
        let mut r = OneByte(&wire[..]);
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some(&b"{\"id\":1}"[..]));
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn a_partial_frame_is_an_unexpected_eof_not_a_truncation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"truncated payload", 64).unwrap();
        // Cut inside the payload.
        let cut = &wire[..wire.len() - 3];
        let err = read_frame(&mut &cut[..], 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Cut inside the header.
        let err = read_frame(&mut &wire[..2], 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &[0u8; 100], 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(wire.is_empty(), "nothing is written past the limit");
        // A hostile length prefix is rejected before allocating the payload.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut &hostile[..], 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
