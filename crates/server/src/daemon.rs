//! The serving daemon: a threaded TCP front-end over
//! [`magma_serve::ServeEngine`].
//!
//! Thread layout:
//!
//! ```text
//!   accept thread ──▶ per-connection reader threads ──▶ command channel
//!                                                            │
//!                                                            ▼
//!                                        engine thread (owns ServeEngine,
//!                                        wall clock = Instant::elapsed)
//!                                                            │
//!                                              per-connection write halves
//! ```
//!
//! The engine thread is the only place simulation state lives: readers
//! decode frames into commands, the engine thread applies them against the
//! wall clock (`submit`/`cancel`/`drain`/`stats`), polls the engine for
//! completions between commands, and writes responses back through each
//! connection's cloned write half. A `drain` command finishes every live
//! session, persists shard caches, answers with the final stats and shuts
//! the whole daemon down — [`Server::join`] then returns those stats.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use magma_model::TenantMix;
use magma_serve::{Admission, EngineConfig, EngineStats, JobCompletion, ServeEngine};

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    decode, encode, RequestMsg, ResponseMsg, KIND_ACCEPTED, KIND_BUSY, KIND_CANCELLED, KIND_DONE,
    KIND_DRAINED, KIND_STATS, VERB_CANCEL, VERB_DRAIN, VERB_STATS, VERB_SUBMIT,
};

/// How long the engine thread sleeps waiting for commands before polling
/// the engine again. Bounds completion-delivery latency when idle.
const POLL_TICK: Duration = Duration::from_millis(2);

/// Commands flowing from connection readers to the engine thread.
enum Cmd {
    /// A connection opened; carries its write half.
    Connect { conn: u64, stream: TcpStream },
    /// A decoded request from `conn`.
    Request { conn: u64, msg: RequestMsg },
    /// A frame that failed to decode (answered with an `error` if it had
    /// a parseable id — here it did not, so the connection is dropped).
    Malformed { conn: u64, reason: String },
    /// The connection closed or errored; forget its write half.
    Gone { conn: u64 },
}

/// An accepted submit the engine is still executing.
struct Book {
    conn: u64,
    request_id: u64,
    total: usize,
    finished: usize,
    any_timed_out: bool,
    cancelled: bool,
}

/// A running serving daemon. Dropping the handle does not stop it; send a
/// `drain` request (e.g. [`crate::client::Client::drain`]) and call
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    engine_thread: JoinHandle<EngineStats>,
    accept_thread: JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spins up the
    /// accept and engine threads and returns immediately.
    pub fn start(
        addr: &str,
        max_frame_bytes: usize,
        config: EngineConfig,
        mix: TenantMix,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Cmd>();

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let tx = tx.clone();
            std::thread::spawn(move || accept_loop(listener, tx, shutdown, max_frame_bytes))
        };
        let engine_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                engine_loop(ServeEngine::new(config, mix), rx, shutdown, max_frame_bytes)
            })
        };
        Ok(Server { addr: bound, engine_thread, accept_thread })
    }

    /// The address the daemon actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a drain shuts the daemon down; returns the engine's
    /// final counters.
    pub fn join(self) -> EngineStats {
        let stats = self.engine_thread.join().expect("engine thread panicked");
        self.accept_thread.join().expect("accept thread panicked");
        stats
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<Cmd>,
    shutdown: Arc<AtomicBool>,
    max_frame_bytes: usize,
) {
    let mut next_conn: u64 = 0;
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = next_conn;
                next_conn += 1;
                let _ = stream.set_nodelay(true);
                let write_half = match stream.try_clone() {
                    Ok(half) => half,
                    Err(_) => continue,
                };
                if tx.send(Cmd::Connect { conn, stream: write_half }).is_err() {
                    break;
                }
                let tx = tx.clone();
                readers.push(std::thread::spawn(move || {
                    reader_loop(conn, stream, tx, max_frame_bytes)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_TICK);
            }
            Err(_) => break,
        }
    }
    for reader in readers {
        let _ = reader.join();
    }
}

fn reader_loop(conn: u64, stream: TcpStream, tx: Sender<Cmd>, max_frame_bytes: usize) {
    let mut r = BufReader::new(stream);
    loop {
        match read_frame(&mut r, max_frame_bytes) {
            Ok(Some(payload)) => match decode::<RequestMsg>(&payload) {
                Ok(msg) => {
                    if tx.send(Cmd::Request { conn, msg }).is_err() {
                        return;
                    }
                }
                Err(reason) => {
                    let _ = tx.send(Cmd::Malformed { conn, reason });
                    return;
                }
            },
            Ok(None) | Err(_) => {
                let _ = tx.send(Cmd::Gone { conn });
                return;
            }
        }
    }
}

/// The engine thread body: applies commands against the wall clock,
/// delivers completions, and on drain finishes everything and exits.
fn engine_loop(
    mut engine: ServeEngine,
    rx: Receiver<Cmd>,
    shutdown: Arc<AtomicBool>,
    max_frame_bytes: usize,
) -> EngineStats {
    let start = Instant::now();
    let mut conns: HashMap<u64, BufWriter<TcpStream>> = HashMap::new();
    // Engine tokens are daemon-assigned; books map them back to the
    // originating (connection, request id) pair.
    let mut next_token: u64 = 0;
    let mut books: HashMap<u64, Book> = HashMap::new();
    let mut submit_index: HashMap<(u64, u64), u64> = HashMap::new();

    'serve: loop {
        let cmd = match rx.recv_timeout(POLL_TICK) {
            Ok(cmd) => Some(cmd),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break 'serve,
        };
        let mut batch: Vec<Cmd> = cmd.into_iter().collect();
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        for cmd in batch {
            let now = start.elapsed().as_secs_f64();
            match cmd {
                Cmd::Connect { conn, stream } => {
                    conns.insert(conn, BufWriter::new(stream));
                }
                Cmd::Gone { conn } => {
                    if let Some(w) = conns.remove(&conn) {
                        let _ = w.get_ref().shutdown(Shutdown::Both);
                    }
                }
                Cmd::Malformed { conn, reason } => {
                    eprintln!("magma-server: dropping connection {conn}: {reason}");
                    if let Some(w) = conns.remove(&conn) {
                        let _ = w.get_ref().shutdown(Shutdown::Both);
                    }
                }
                Cmd::Request { conn, msg } => match msg.verb.as_str() {
                    VERB_SUBMIT => {
                        let (tenant, jobs) = (msg.tenant, msg.jobs);
                        let resp = match (tenant, jobs) {
                            (Some(tenant), Some(jobs)) => {
                                let token = next_token;
                                let total = jobs.len();
                                match engine.submit(now, token, tenant, jobs) {
                                    Admission::Accepted => {
                                        next_token += 1;
                                        books.insert(
                                            token,
                                            Book {
                                                conn,
                                                request_id: msg.id,
                                                total,
                                                finished: 0,
                                                any_timed_out: false,
                                                cancelled: false,
                                            },
                                        );
                                        submit_index.insert((conn, msg.id), token);
                                        ResponseMsg::new(msg.id, KIND_ACCEPTED)
                                    }
                                    Admission::Busy { retry_after_sec } => ResponseMsg {
                                        retry_after_sec: Some(retry_after_sec),
                                        ..ResponseMsg::new(msg.id, KIND_BUSY)
                                    },
                                    Admission::Draining => {
                                        ResponseMsg::error(msg.id, "draining: admissions closed")
                                    }
                                    Admission::Invalid { reason } => {
                                        ResponseMsg::error(msg.id, &reason)
                                    }
                                }
                            }
                            _ => ResponseMsg::error(msg.id, "submit_group needs tenant and jobs"),
                        };
                        send_to(&mut conns, conn, &resp, max_frame_bytes);
                    }
                    VERB_CANCEL => {
                        let resp = match msg.target.and_then(|t| submit_index.get(&(conn, t))) {
                            Some(&token) => {
                                if engine.cancel(now, token) {
                                    if let Some(book) = books.get_mut(&token) {
                                        book.cancelled = true;
                                    }
                                    ResponseMsg::new(msg.id, KIND_CANCELLED)
                                } else {
                                    ResponseMsg::error(msg.id, "target is not cancellable")
                                }
                            }
                            None => ResponseMsg::error(msg.id, "cancel target unknown"),
                        };
                        send_to(&mut conns, conn, &resp, max_frame_bytes);
                        // Cancellation may synthesize completions immediately.
                        let completions = engine.poll(start.elapsed().as_secs_f64());
                        deliver(
                            &mut conns,
                            &mut books,
                            &mut submit_index,
                            completions,
                            max_frame_bytes,
                        );
                    }
                    VERB_STATS => {
                        let resp = ResponseMsg {
                            stats: Some(engine.stats()),
                            ..ResponseMsg::new(msg.id, KIND_STATS)
                        };
                        send_to(&mut conns, conn, &resp, max_frame_bytes);
                    }
                    VERB_DRAIN => {
                        let completions = engine.drain(now);
                        deliver(
                            &mut conns,
                            &mut books,
                            &mut submit_index,
                            completions,
                            max_frame_bytes,
                        );
                        let stats = engine.stats();
                        let resp = ResponseMsg {
                            jobs: Some(stats.completed_jobs as usize),
                            stats: Some(stats),
                            ..ResponseMsg::new(msg.id, KIND_DRAINED)
                        };
                        send_to(&mut conns, conn, &resp, max_frame_bytes);
                        break 'serve;
                    }
                    other => {
                        let resp = ResponseMsg::error(msg.id, &format!("unknown verb {other:?}"));
                        send_to(&mut conns, conn, &resp, max_frame_bytes);
                    }
                },
            }
        }
        let completions = engine.poll(start.elapsed().as_secs_f64());
        deliver(&mut conns, &mut books, &mut submit_index, completions, max_frame_bytes);
    }

    shutdown.store(true, Ordering::SeqCst);
    for (_, w) in conns.drain() {
        let _ = w.get_ref().shutdown(Shutdown::Both);
    }
    engine.stats()
}

/// Folds engine completions into their books; emits the terminal `done`
/// (or `cancelled`) once a submit's whole group has executed.
fn deliver(
    conns: &mut HashMap<u64, BufWriter<TcpStream>>,
    books: &mut HashMap<u64, Book>,
    submit_index: &mut HashMap<(u64, u64), u64>,
    completions: Vec<JobCompletion>,
    max_frame_bytes: usize,
) {
    for completion in completions {
        let Some(book) = books.get_mut(&completion.token) else { continue };
        book.finished += 1;
        book.any_timed_out |= completion.timed_out;
        book.cancelled |= completion.cancelled;
        if book.finished < book.total {
            continue;
        }
        let book = books.remove(&completion.token).expect("book exists");
        submit_index.remove(&(book.conn, book.request_id));
        let resp = if book.cancelled {
            ResponseMsg::new(book.request_id, KIND_CANCELLED)
        } else {
            ResponseMsg {
                jobs: Some(book.total),
                timed_out: Some(book.any_timed_out),
                ..ResponseMsg::new(book.request_id, KIND_DONE)
            }
        };
        send_to(conns, book.conn, &resp, max_frame_bytes);
    }
}

/// Writes a response to a connection, dropping the connection on error
/// (its reader will notice the shutdown and report `Gone`).
fn send_to(
    conns: &mut HashMap<u64, BufWriter<TcpStream>>,
    conn: u64,
    resp: &ResponseMsg,
    max_frame_bytes: usize,
) {
    let Some(w) = conns.get_mut(&conn) else { return };
    if write_frame(w, &encode(resp), max_frame_bytes).is_err() {
        if let Some(w) = conns.remove(&conn) {
            let _ = w.get_ref().shutdown(Shutdown::Both);
        }
    }
}
