//! magma-server — a wall-clock RPC serving daemon and load-generator
//! client over the serving core.
//!
//! The simulator crates (`magma-serve`) answer *what-if* questions on a
//! virtual clock; this crate runs the same machinery — admission
//! batching, signature-affine placement, concurrent mapper sessions,
//! the mapping cache — as a **real server**: a TCP daemon whose clock is
//! `Instant::now()` and whose requests arrive over a socket.
//!
//! ```text
//!   loadgen / any client ── length-prefixed JSON frames ──▶ daemon
//!        │ submit_group / cancel / drain / stats               │
//!        │ ◀── accepted/busy ... done (multiplexed ids) ◀──────┘
//!        ▼
//!   BENCH_rpc.json (magma-rpc/v1): client-measured p50/p95/p99,
//!   admission outcomes, final server counters, scenario descriptor
//! ```
//!
//! * [`frame`] — 4-byte big-endian length-prefixed framing with hard
//!   size limits; tolerant of arbitrary read splits.
//! * [`proto`] — the JSON message shapes and verbs
//!   (`submit_group`/`cancel`/`drain`/`stats`) with per-request ids.
//! * [`daemon`] — [`Server`]: accept thread + per-connection readers +
//!   one engine thread owning a
//!   [`ServeEngine`](magma_serve::ServeEngine); graceful drain finishes
//!   every admitted group and persists shard caches before shutdown.
//! * [`client`] — [`Client`] and the pure [`Mux`] state machine that
//!   guarantees no response is lost or double-counted.
//! * [`loadgen`] — wall-clock trace replay emitting [`RpcReport`].
//! * [`report`] — the schema-stable `BENCH_rpc.json` contract
//!   (`magma-rpc/v1`), self-checked by [`RpcReport::validate`].
//!
//! Backpressure is part of the protocol: when the projected mapper
//! backlog exceeds the configured bound (the same load measure the
//! fleet router balances on), submits get `busy` with a
//! `retry_after_sec` hint instead of queueing without bound.
//!
//! The end-to-end localhost suite lives in `tests/integration_rpc.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod frame;
pub mod loadgen;
pub mod proto;
pub mod report;

pub use client::{Client, Event, Mux, PendingKind};
pub use daemon::Server;
pub use loadgen::LoadgenParams;
pub use proto::{RequestMsg, ResponseMsg};
pub use report::{write_rpc_json, RpcReport, RPC_SCHEMA};
