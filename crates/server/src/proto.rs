//! The wire protocol: request/response message shapes and verbs.
//!
//! Each frame (see [`crate::frame`]) carries one compact-JSON
//! [`RequestMsg`] (client → server) or [`ResponseMsg`] (server → client).
//! The protocol is **multiplexed**: the client tags every request with a
//! connection-unique `id` and the server echoes it on every response, so
//! many requests can be in flight on one socket and responses may arrive
//! in any order. A `submit_group` gets *two* responses over its lifetime —
//! an immediate admission verdict (`accepted` / `busy` / `error`) and,
//! for accepted groups, a terminal `done` (or `cancelled`) once every job
//! in the group has executed.
//!
//! The vendored serde stack has no field attributes, so both messages are
//! flat structs whose verb-specific fields are `Option`s; the constructors
//! below are the only intended way to build well-formed requests.

use magma_model::Job;
use magma_serve::EngineStats;
use serde::{Deserialize, Serialize};

/// Verb: submit a group of jobs for mapping + execution.
pub const VERB_SUBMIT: &str = "submit_group";
/// Verb: cancel a previously accepted `submit_group` by its request id.
pub const VERB_CANCEL: &str = "cancel";
/// Verb: stop admissions, finish all live work, persist caches, shut down.
pub const VERB_DRAIN: &str = "drain";
/// Verb: snapshot the engine's counters.
pub const VERB_STATS: &str = "stats";

/// Response kind: the group was admitted; a terminal `done` will follow.
pub const KIND_ACCEPTED: &str = "accepted";
/// Response kind: backpressure — retry after `retry_after_sec`.
pub const KIND_BUSY: &str = "busy";
/// Response kind: every job in an accepted group finished executing.
pub const KIND_DONE: &str = "done";
/// Response kind: a cancel was acknowledged (terminal for the target).
pub const KIND_CANCELLED: &str = "cancelled";
/// Response kind: the drain completed; carries the final [`EngineStats`].
pub const KIND_DRAINED: &str = "drained";
/// Response kind: a stats snapshot.
pub const KIND_STATS: &str = "stats";
/// Response kind: the request was rejected outright (see `error`).
pub const KIND_ERROR: &str = "error";

/// One client → server message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestMsg {
    /// Connection-unique request id, echoed on every response.
    pub id: u64,
    /// One of the `VERB_*` constants.
    pub verb: String,
    /// `submit_group`: the submitting tenant's index in the server's mix.
    pub tenant: Option<usize>,
    /// `submit_group`: the jobs forming the group.
    pub jobs: Option<Vec<Job>>,
    /// `cancel`: the `id` of the `submit_group` to cancel.
    pub target: Option<u64>,
}

impl RequestMsg {
    /// Builds a `submit_group` request.
    pub fn submit(id: u64, tenant: usize, jobs: Vec<Job>) -> Self {
        Self {
            id,
            verb: VERB_SUBMIT.to_string(),
            tenant: Some(tenant),
            jobs: Some(jobs),
            target: None,
        }
    }

    /// Builds a `cancel` request targeting an earlier submit's id.
    pub fn cancel(id: u64, target: u64) -> Self {
        Self { id, verb: VERB_CANCEL.to_string(), tenant: None, jobs: None, target: Some(target) }
    }

    /// Builds a `drain` request.
    pub fn drain(id: u64) -> Self {
        Self { id, verb: VERB_DRAIN.to_string(), tenant: None, jobs: None, target: None }
    }

    /// Builds a `stats` request.
    pub fn stats(id: u64) -> Self {
        Self { id, verb: VERB_STATS.to_string(), tenant: None, jobs: None, target: None }
    }
}

/// One server → client message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseMsg {
    /// The request id this response answers.
    pub id: u64,
    /// One of the `KIND_*` constants.
    pub kind: String,
    /// `busy`: suggested wait before resubmitting, in seconds.
    pub retry_after_sec: Option<f64>,
    /// `done` / `drained`: number of jobs that executed.
    pub jobs: Option<usize>,
    /// `done`: whether any job in the group blew its deadline.
    pub timed_out: Option<bool>,
    /// `stats` / `drained`: an engine counter snapshot.
    pub stats: Option<EngineStats>,
    /// `error`: human-readable rejection reason.
    pub error: Option<String>,
}

impl ResponseMsg {
    /// Builds a bare response of `kind` answering request `id`.
    pub fn new(id: u64, kind: &str) -> Self {
        Self {
            id,
            kind: kind.to_string(),
            retry_after_sec: None,
            jobs: None,
            timed_out: None,
            stats: None,
            error: None,
        }
    }

    /// Builds an `error` response with a reason.
    pub fn error(id: u64, reason: &str) -> Self {
        Self { error: Some(reason.to_string()), ..Self::new(id, KIND_ERROR) }
    }
}

/// Encodes a message as a compact-JSON frame payload.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg).expect("protocol messages always serialize").into_bytes()
}

/// Decodes a frame payload; the error string names the parse failure.
pub fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("malformed message: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_model::{LayerShape, TaskType};

    #[test]
    fn requests_round_trip_with_job_payloads() {
        let job = Job::new(
            magma_model::JobId(0),
            "mlp",
            0,
            LayerShape::FullyConnected { out_features: 128, in_features: 64 },
            4,
            TaskType::Recommendation,
        );
        let req = RequestMsg::submit(7, 1, vec![job]);
        let back: RequestMsg = decode(&encode(&req)).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.verb, VERB_SUBMIT);
        assert_eq!(back.tenant, Some(1));
        assert_eq!(back.jobs.as_ref().map(Vec::len), Some(1));

        let resp = ResponseMsg { retry_after_sec: Some(0.25), ..ResponseMsg::new(7, KIND_BUSY) };
        let back: ResponseMsg = decode(&encode(&resp)).unwrap();
        assert_eq!(back.kind, KIND_BUSY);
        assert_eq!(back.retry_after_sec, Some(0.25));
    }

    #[test]
    fn malformed_payloads_decode_to_errors_not_panics() {
        assert!(decode::<RequestMsg>(b"not json").is_err());
        assert!(decode::<RequestMsg>(&[0xff, 0xfe]).is_err());
        assert!(decode::<RequestMsg>(b"{\"id\":1}").is_err(), "missing verb");
    }
}
