//! The client side: a request multiplexer and a blocking TCP client.
//!
//! [`Mux`] is the pure state machine: it tracks which request ids are
//! awaiting which responses and turns raw [`ResponseMsg`]s into typed
//! [`Event`]s, rejecting unknown ids, duplicate terminals and
//! wrong-state responses. Keeping it free of I/O makes the
//! zero-lost/zero-duplicated-response property directly testable (the
//! proptest below drives it with interleaved response orders).
//!
//! [`Client`] wraps a `TcpStream` around a `Mux`: a background reader
//! thread decodes frames into a channel and [`Client::poll_event`]
//! pumps them through the multiplexer.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::thread::JoinHandle;
use std::time::Duration;

use magma_model::Job;
use magma_serve::EngineStats;

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    decode, encode, RequestMsg, ResponseMsg, KIND_ACCEPTED, KIND_BUSY, KIND_CANCELLED, KIND_DONE,
    KIND_DRAINED, KIND_ERROR, KIND_STATS,
};

/// What a request id is currently waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingKind {
    /// A `submit_group` awaiting its admission verdict.
    Submit,
    /// A `cancel` awaiting its acknowledgement.
    Cancel,
    /// A `drain` awaiting the final `drained` response.
    Drain,
    /// A `stats` awaiting its snapshot.
    Stats,
}

/// A typed, validated server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A submit was admitted; a terminal [`Event::Done`] (or
    /// [`Event::Cancelled`]) will follow for the same id.
    Accepted {
        /// The submit's request id.
        id: u64,
    },
    /// A submit was rejected by backpressure.
    Busy {
        /// The submit's request id.
        id: u64,
        /// Suggested wait before resubmitting, in seconds.
        retry_after_sec: f64,
    },
    /// Every job in an accepted submit finished executing.
    Done {
        /// The submit's request id.
        id: u64,
        /// Number of jobs that executed.
        jobs: usize,
        /// Whether any job blew its deadline.
        timed_out: bool,
    },
    /// An accepted submit was cancelled (terminal), or a `cancel` request
    /// was acknowledged — distinguished by which id the server echoes.
    Cancelled {
        /// The request id the acknowledgement answers.
        id: u64,
    },
    /// The drain completed; the server is shutting down.
    Drained {
        /// The drain's request id.
        id: u64,
        /// Total jobs the engine completed over its lifetime.
        jobs: usize,
        /// The engine's final counter snapshot, if the server attached one.
        stats: Option<EngineStats>,
    },
    /// A stats snapshot.
    Stats {
        /// The stats request id.
        id: u64,
        /// The engine's counters at snapshot time.
        stats: EngineStats,
    },
    /// The server rejected a request outright.
    Error {
        /// The rejected request's id.
        id: u64,
        /// The server's reason.
        error: String,
    },
}

/// The pure request-multiplexing state machine.
///
/// Invariants enforced (violations return `Err` rather than being
/// silently dropped — the integration suite asserts no send path ever
/// trips them):
///
/// * every response id must match a request this mux sent;
/// * a request id gets exactly one verdict, and an accepted submit
///   exactly one terminal — duplicates are protocol errors;
/// * response kinds must match the request's [`PendingKind`].
#[derive(Debug, Default)]
pub struct Mux {
    pending: HashMap<u64, PendingKind>,
    in_flight: HashSet<u64>,
}

impl Mux {
    /// Creates an empty multiplexer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that request `id` of `kind` was sent. Reusing a live id is
    /// an error.
    pub fn sent(&mut self, id: u64, kind: PendingKind) -> Result<(), String> {
        if self.pending.contains_key(&id) || self.in_flight.contains(&id) {
            return Err(format!("request id {id} is already live"));
        }
        self.pending.insert(id, kind);
        Ok(())
    }

    /// Number of requests still awaiting a verdict or terminal response.
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.in_flight.len()
    }

    /// Ids of accepted submits still awaiting their terminal response.
    pub fn in_flight(&self) -> impl Iterator<Item = u64> + '_ {
        self.in_flight.iter().copied()
    }

    /// Consumes one server response, advancing the state machine.
    pub fn on_response(&mut self, resp: &ResponseMsg) -> Result<Event, String> {
        let id = resp.id;
        // Terminal for an accepted submit?
        if self.in_flight.contains(&id) {
            let event = match resp.kind.as_str() {
                KIND_DONE => Event::Done {
                    id,
                    jobs: resp.jobs.unwrap_or(0),
                    timed_out: resp.timed_out.unwrap_or(false),
                },
                KIND_CANCELLED => Event::Cancelled { id },
                other => {
                    return Err(format!(
                        "in-flight submit {id} got non-terminal response kind {other:?}"
                    ))
                }
            };
            self.in_flight.remove(&id);
            return Ok(event);
        }
        let Some(kind) = self.pending.get(&id).copied() else {
            return Err(format!("response for unknown request id {id} (kind {:?})", resp.kind));
        };
        let event = match (kind, resp.kind.as_str()) {
            (PendingKind::Submit, KIND_ACCEPTED) => {
                self.in_flight.insert(id);
                Event::Accepted { id }
            }
            (PendingKind::Submit, KIND_BUSY) => {
                Event::Busy { id, retry_after_sec: resp.retry_after_sec.unwrap_or(0.0) }
            }
            (PendingKind::Cancel, KIND_CANCELLED) => Event::Cancelled { id },
            (PendingKind::Drain, KIND_DRAINED) => {
                Event::Drained { id, jobs: resp.jobs.unwrap_or(0), stats: resp.stats }
            }
            (PendingKind::Stats, KIND_STATS) => Event::Stats {
                id,
                stats: resp.stats.ok_or_else(|| format!("stats response {id} without stats"))?,
            },
            (_, KIND_ERROR) => {
                Event::Error { id, error: resp.error.clone().unwrap_or_else(|| "error".into()) }
            }
            (kind, other) => {
                return Err(format!("request {id} ({kind:?}) got response kind {other:?}"))
            }
        };
        self.pending.remove(&id);
        Ok(event)
    }
}

/// A blocking TCP client speaking the magma-rpc protocol.
///
/// Requests are written synchronously on the caller's thread; responses
/// are decoded by a background reader thread and surfaced through
/// [`Client::poll_event`] in arrival order.
pub struct Client {
    writer: BufWriter<TcpStream>,
    events: Receiver<io::Result<ResponseMsg>>,
    mux: Mux,
    next_id: u64,
    max_frame_bytes: usize,
    reader: Option<JoinHandle<()>>,
}

impl Client {
    /// Connects to `addr` and spawns the reader thread.
    pub fn connect(addr: &str, max_frame_bytes: usize) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut r = BufReader::new(read_half);
            loop {
                match read_frame(&mut r, max_frame_bytes) {
                    Ok(None) => break,
                    Ok(Some(payload)) => {
                        let msg = decode::<ResponseMsg>(&payload)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                        if tx.send(msg).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        Ok(Self {
            writer: BufWriter::new(stream),
            events: rx,
            mux: Mux::new(),
            next_id: 1,
            max_frame_bytes,
            reader: Some(reader),
        })
    }

    fn send(&mut self, msg: &RequestMsg, kind: PendingKind) -> io::Result<u64> {
        self.mux.sent(msg.id, kind).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        write_frame(&mut self.writer, &encode(msg), self.max_frame_bytes)?;
        Ok(msg.id)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Submits a job group; returns the request id to correlate events.
    pub fn submit(&mut self, tenant: usize, jobs: Vec<Job>) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&RequestMsg::submit(id, tenant, jobs), PendingKind::Submit)
    }

    /// Cancels an earlier submit by its request id.
    pub fn cancel(&mut self, target: u64) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&RequestMsg::cancel(id, target), PendingKind::Cancel)
    }

    /// Requests a graceful drain; the server shuts down after answering.
    pub fn drain(&mut self) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&RequestMsg::drain(id), PendingKind::Drain)
    }

    /// Requests a stats snapshot.
    pub fn stats(&mut self) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&RequestMsg::stats(id), PendingKind::Stats)
    }

    /// Number of requests still awaiting a verdict or terminal response.
    pub fn outstanding(&self) -> usize {
        self.mux.outstanding()
    }

    /// Waits up to `timeout` for the next server event. `Ok(None)` means
    /// the timeout elapsed with nothing to report; protocol violations
    /// surface as [`io::ErrorKind::InvalidData`].
    pub fn poll_event(&mut self, timeout: Duration) -> io::Result<Option<Event>> {
        match self.events.recv_timeout(timeout) {
            Ok(Ok(resp)) => self
                .mux
                .on_response(&resp)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if let Ok(stream) = self.writer.get_ref().try_clone() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ResponseMsg;
    use proptest::prelude::*;

    fn resp(id: u64, kind: &str) -> ResponseMsg {
        ResponseMsg::new(id, kind)
    }

    #[test]
    fn a_submit_walks_accepted_then_done() {
        let mut mux = Mux::new();
        mux.sent(1, PendingKind::Submit).unwrap();
        assert_eq!(mux.on_response(&resp(1, KIND_ACCEPTED)).unwrap(), Event::Accepted { id: 1 });
        assert_eq!(mux.outstanding(), 1, "accepted submits stay in flight");
        let done = ResponseMsg { jobs: Some(3), timed_out: Some(false), ..resp(1, KIND_DONE) };
        assert_eq!(
            mux.on_response(&done).unwrap(),
            Event::Done { id: 1, jobs: 3, timed_out: false }
        );
        assert_eq!(mux.outstanding(), 0);
    }

    #[test]
    fn protocol_violations_are_errors_not_silence() {
        let mut mux = Mux::new();
        assert!(mux.on_response(&resp(9, KIND_DONE)).is_err(), "unknown id");
        mux.sent(1, PendingKind::Submit).unwrap();
        assert!(mux.sent(1, PendingKind::Submit).is_err(), "duplicate live id");
        assert!(mux.on_response(&resp(1, KIND_DONE)).is_err(), "done before accepted");
        mux.on_response(&resp(1, KIND_ACCEPTED)).unwrap();
        assert!(mux.on_response(&resp(1, KIND_ACCEPTED)).is_err(), "duplicate accepted");
        let done = resp(1, KIND_DONE);
        mux.on_response(&done).unwrap();
        assert!(mux.on_response(&done).is_err(), "duplicate terminal");
    }

    // Any interleaving of well-formed responses across many in-flight
    // submits yields exactly one Accepted and one terminal per id — no
    // response lost, none double-counted.
    proptest! {
        #[test]
        fn multiplexing_survives_arbitrary_response_interleavings(
            n in 1usize..24,
            order_seed in proptest::collection::vec(0u64..1_000_000, 48..49),
        ) {
            let mut mux = Mux::new();
            for id in 0..n as u64 {
                mux.sent(id, PendingKind::Submit).unwrap();
            }
            // Each submit owes two responses: accepted then done. Build the
            // per-id queues, then interleave them with the seeded order.
            let mut queues: Vec<Vec<ResponseMsg>> = (0..n as u64)
                .map(|id| vec![
                    ResponseMsg::new(id, KIND_ACCEPTED),
                    ResponseMsg { jobs: Some(1), ..ResponseMsg::new(id, KIND_DONE) },
                ])
                .collect();
            let mut accepted = vec![0usize; n];
            let mut done = vec![0usize; n];
            let mut delivered = 0usize;
            let mut pick = 0usize;
            while delivered < 2 * n {
                let live: Vec<usize> =
                    (0..n).filter(|&i| !queues[i].is_empty()).collect();
                let choice = order_seed[pick % order_seed.len()] as usize % live.len();
                pick += 1;
                let i = live[choice];
                let msg = queues[i].remove(0);
                match mux.on_response(&msg).unwrap() {
                    Event::Accepted { id } => accepted[id as usize] += 1,
                    Event::Done { id, .. } => done[id as usize] += 1,
                    other => prop_assert!(false, "unexpected event {other:?}"),
                }
                delivered += 1;
            }
            prop_assert!(accepted.iter().all(|&c| c == 1));
            prop_assert!(done.iter().all(|&c| c == 1));
            prop_assert_eq!(mux.outstanding(), 0);
        }
    }
}
